// Package dram is a cycle-level DDR3 memory-system simulator: channels,
// registered dual-rank DIMMs, banks, closed-page row-buffer management, FCFS
// scheduling with read priority (until the writeback queue is half full),
// bank-interleaved address mapping, refresh, precharge powerdown, bus
// frequency scaling with DLL re-lock penalties, and IDD-based power
// accounting following Micron's DDR3 power methodology.
//
// It is the detailed substrate of the paper's two-step methodology
// (DESIGN.md §1): the fast epoch backend's analytic queueing model
// (internal/memsys) is calibrated against this simulator in the
// cross-validation tests in internal/sim.
package dram

import (
	"fmt"
	"time"

	"coscale/internal/freq"
)

// RowPolicy selects the row-buffer management policy.
type RowPolicy int

// Row-buffer policies. The paper's MC uses closed-page management, "which
// outperforms open-page policies for multi-core CPUs" (§4.1) — the
// comparison is reproduced in the benchmarks.
const (
	ClosedPage RowPolicy = iota // auto-precharge after every access (default)
	OpenPage                    // rows stay open; conflicts pay an extra precharge
)

// Config describes the memory system (Table 2 defaults).
type Config struct {
	Channels        int
	DIMMsPerChannel int
	RanksPerDIMM    int
	BanksPerRank    int

	// RowPolicy is the row-buffer management policy (default ClosedPage).
	RowPolicy RowPolicy

	BusHz float64 // initial bus frequency (data rate is 2x)

	// DRAM core timing in nanoseconds (fixed across bus frequencies).
	TRCDNs float64 // activate to read/write
	TRPNs  float64 // precharge
	TCLNs  float64 // CAS latency
	TRASNs float64 // activate to precharge minimum
	TWRNs  float64 // write recovery
	TRFCNs float64 // refresh cycle time

	// Interface timing in bus cycles at the current frequency.
	BurstCycles int // data burst length on the bus (BL8 on DDR = 4)
	TRTPCycles  int // read to precharge
	TRRDCycles  int // activate to activate, same rank
	TFAWCycles  int // four-activate window
	TXPCycles   int // powerdown exit

	RefreshPeriod time.Duration // tREFI x rows; per-rank refresh interval (64 ms / 8192 rows)

	// PowerdownIdleCycles is the idle timeout before a rank enters
	// precharge powerdown (0 disables powerdown).
	PowerdownIdleCycles int

	// Queue capacities per channel.
	ReadQueueDepth  int
	WriteQueueDepth int

	// Electrical parameters for the Micron power methodology, per DRAM
	// device, with Table 2 currents (mA) at VDD.
	VDD            float64
	DevicesPerRank int
	IDD0           float64 // activate-precharge average
	IDD2P          float64 // precharge powerdown
	IDD2N          float64 // precharge standby
	IDD3P          float64 // active powerdown
	IDD3N          float64 // active standby
	IDD4R          float64 // burst read
	IDD4W          float64 // burst write
	IDD5           float64 // refresh

	RowBytes   int // row (page) size in bytes, for address mapping
	BlockBytes int // request granularity (cache block)
}

// DefaultConfig returns the Table 2 memory system at 800 MHz.
func DefaultConfig() Config {
	return Config{
		Channels:        4,
		DIMMsPerChannel: 2,
		RanksPerDIMM:    2,
		BanksPerRank:    8,
		BusHz:           800 * freq.MHz,

		TRCDNs: 15, TRPNs: 15, TCLNs: 15,
		TRASNs: 35, TWRNs: 15, TRFCNs: 110,

		BurstCycles: 4,
		TRTPCycles:  5,
		TRRDCycles:  4,
		TFAWCycles:  20,
		TXPCycles:   5,

		RefreshPeriod:       7813 * time.Nanosecond, // 64 ms / 8192 rows
		PowerdownIdleCycles: 32,

		ReadQueueDepth:  64,
		WriteQueueDepth: 64,

		VDD:            1.5,
		DevicesPerRank: 18, // x4 devices forming a 72-bit ECC rank
		IDD0:           120e-3,
		IDD2P:          45e-3,
		IDD2N:          70e-3,
		IDD3P:          45e-3,
		IDD3N:          67e-3,
		IDD4R:          250e-3,
		IDD4W:          250e-3,
		IDD5:           240e-3,

		RowBytes:   8192,
		BlockBytes: 64,
	}
}

// Validate checks structural soundness.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.DIMMsPerChannel <= 0 || c.RanksPerDIMM <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("dram: geometry must be positive")
	case c.BusHz <= 0:
		return fmt.Errorf("dram: BusHz must be positive")
	case c.BurstCycles <= 0 || c.BlockBytes <= 0 || c.RowBytes < c.BlockBytes:
		return fmt.Errorf("dram: invalid burst/block/row sizes")
	case c.ReadQueueDepth <= 0 || c.WriteQueueDepth <= 0:
		return fmt.Errorf("dram: queue depths must be positive")
	}
	return nil
}

// RanksPerChannel returns the rank count on one channel.
func (c Config) RanksPerChannel() int { return c.DIMMsPerChannel * c.RanksPerDIMM }

// cyc converts nanoseconds to whole bus cycles at frequency hz, rounding up.
func cyc(ns, hz float64) int64 {
	n := int64(ns * 1e-9 * hz)
	if float64(n) < ns*1e-9*hz {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// timing is the per-frequency cycle conversion of Config.
type timing struct {
	tRCD, tRP, tCL, tRAS, tWR, tRFC int64
	tRTP, tRRD, tFAW, tXP, burst    int64
	refreshEvery                    int64
}

func (c Config) timingAt(hz float64) timing {
	return timing{
		tRCD:         cyc(c.TRCDNs, hz),
		tRP:          cyc(c.TRPNs, hz),
		tCL:          cyc(c.TCLNs, hz),
		tRAS:         cyc(c.TRASNs, hz),
		tWR:          cyc(c.TWRNs, hz),
		tRFC:         cyc(c.TRFCNs, hz),
		tRTP:         int64(c.TRTPCycles),
		tRRD:         int64(c.TRRDCycles),
		tFAW:         int64(c.TFAWCycles),
		tXP:          int64(c.TXPCycles),
		burst:        int64(c.BurstCycles),
		refreshEvery: cyc(float64(c.RefreshPeriod.Nanoseconds()), hz),
	}
}
