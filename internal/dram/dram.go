package dram

import (
	"fmt"
)

// Request is one 64 B memory transaction (an LLC miss fill, writeback or
// prefetch fill).
type Request struct {
	Addr     uint64
	Write    bool
	Prefetch bool // prefetcher-initiated fill (no core is stalled on it)
	Core     int  // originating core, for per-core accounting

	arrival int64
}

// Completion reports a finished request.
type Completion struct {
	Req     Request
	Latency int64 // bus cycles from enqueue to data transfer completion
}

// Location is a decoded physical address.
type Location struct {
	Channel, Rank, Bank int
	Row                 uint64
}

// Memory is the full multi-channel memory system. It is driven in bus-cycle
// ticks; all channels share one clock.
type Memory struct {
	cfg Config
	tm  timing
	now int64

	channels []*channel
}

// New builds a memory system.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Memory{cfg: cfg, tm: cfg.timingAt(cfg.BusHz)}
	for c := 0; c < cfg.Channels; c++ {
		m.channels = append(m.channels, newChannel(&m.cfg, &m.tm))
	}
	return m, nil
}

// Now returns the current cycle.
func (m *Memory) Now() int64 { return m.now }

// BusHz returns the current bus frequency.
func (m *Memory) BusHz() float64 { return m.cfg.BusHz }

// Map decodes a block address into its channel/rank/bank/row under the
// bank-interleaved (block-granularity) mapping that maximizes channel and
// bank parallelism for the single-issue streams this system serves.
func (m *Memory) Map(addr uint64) Location {
	block := addr / uint64(m.cfg.BlockBytes)
	ch := int(block % uint64(m.cfg.Channels))
	block /= uint64(m.cfg.Channels)
	bank := int(block % uint64(m.cfg.BanksPerRank))
	block /= uint64(m.cfg.BanksPerRank)
	rank := int(block % uint64(m.cfg.RanksPerChannel()))
	block /= uint64(m.cfg.RanksPerChannel())
	blocksPerRow := uint64(m.cfg.RowBytes / m.cfg.BlockBytes)
	return Location{Channel: ch, Rank: rank, Bank: bank, Row: block / blocksPerRow}
}

// Enqueue admits a request; it reports false when the target queue is full
// (back-pressure the caller must retry).
func (m *Memory) Enqueue(r Request) bool {
	loc := m.Map(r.Addr)
	r.arrival = m.now
	return m.channels[loc.Channel].enqueue(r, loc)
}

// Tick advances n bus cycles and returns the requests completed during them.
func (m *Memory) Tick(n int) []Completion {
	var done []Completion
	for i := 0; i < n; i++ {
		for _, ch := range m.channels {
			ch.step(m.now, &done)
		}
		m.now++
	}
	return done
}

// Drain ticks until every queue and in-flight request completes, returning
// completions and the cycles consumed. It fails if no progress is possible.
func (m *Memory) Drain() ([]Completion, int64, error) {
	var done []Completion
	start := m.now
	for !m.Idle() {
		before := m.pending()
		d := m.Tick(1024)
		done = append(done, d...)
		if m.pending() == before && len(d) == 0 && m.now-start > 1<<24 {
			return done, m.now - start, fmt.Errorf("dram: drain stalled with %d pending", before)
		}
	}
	return done, m.now - start, nil
}

// Idle reports whether all queues are empty and all banks quiescent.
func (m *Memory) Idle() bool {
	for _, ch := range m.channels {
		if !ch.idle(m.now) {
			return false
		}
	}
	return true
}

func (m *Memory) pending() int {
	n := 0
	for _, ch := range m.channels {
		n += len(ch.readQ) + len(ch.writeQ)
	}
	return n
}

// SetFrequency drains the memory system, switches the bus frequency and
// returns the transition stall in *new* bus cycles (the DLL re-lock penalty
// the paper charges: 512 cycles + 28 ns). The caller should advance its
// clock by that stall with memory accesses halted.
func (m *Memory) SetFrequency(hz float64) (penalty int64, err error) {
	if hz <= 0 {
		return 0, fmt.Errorf("dram: non-positive frequency")
	}
	if _, _, err := m.Drain(); err != nil {
		return 0, err
	}
	m.cfg.BusHz = hz
	m.tm = m.cfg.timingAt(hz)
	for _, ch := range m.channels {
		ch.retime(m.now)
	}
	return 512 + cyc(28, hz), nil
}

// Stats aggregates channel statistics.
func (m *Memory) Stats() Stats {
	var s Stats
	for _, ch := range m.channels {
		s.add(&ch.stats)
	}
	s.Cycles = m.now
	return s
}

// ChannelStats returns one channel's statistics.
func (m *Memory) ChannelStats(c int) Stats {
	s := m.channels[c].stats
	s.Cycles = m.now
	return s
}

// Energy returns the accumulated energy in joules under the Micron IDD
// methodology, summed over all ranks, plus the wall time simulated.
func (m *Memory) Energy() (joules float64, seconds float64) {
	for _, ch := range m.channels {
		joules += ch.energy(&m.cfg)
	}
	return joules, float64(m.now) / m.cfg.BusHz
}

// Stats are the per-channel counters the MemScale/CoScale models read.
type Stats struct {
	Cycles        int64
	Reads, Writes int64
	LatencySum    int64 // Σ completion latency, bus cycles
	BusBusy       int64 // cycles the data bus carried data
	QueueOcc      int64 // Σ queued requests per cycle
	BankOcc       int64 // Σ busy banks per cycle
	ActiveCycles  int64 // Σ rank-cycles with an open row
	PowerdownCyc  int64 // Σ rank-cycles in precharge powerdown
	Activates     int64
	Refreshes     int64
	RetiredWrites int64
	RowHits       int64 // open-page row-buffer hits (0 under closed-page)
	RowMisses     int64 // accesses that required an activate
}

func (s *Stats) add(o *Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.LatencySum += o.LatencySum
	s.BusBusy += o.BusBusy
	s.QueueOcc += o.QueueOcc
	s.BankOcc += o.BankOcc
	s.ActiveCycles += o.ActiveCycles
	s.PowerdownCyc += o.PowerdownCyc
	s.Activates += o.Activates
	s.Refreshes += o.Refreshes
	s.RetiredWrites += o.RetiredWrites
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// AvgReadLatency returns mean read latency in bus cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Reads)
}

// BusUtilization returns data-bus busy fraction (per channel when read via
// ChannelStats; averaged when aggregated).
func (s Stats) BusUtilization(channels int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.BusBusy) / float64(s.Cycles) / float64(channels)
}
