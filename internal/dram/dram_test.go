package dram

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Memory {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Error("zero channels accepted")
	}
	bad = DefaultConfig()
	bad.BusHz = -1
	if bad.Validate() == nil {
		t.Error("negative frequency accepted")
	}
	bad = DefaultConfig()
	bad.RowBytes = 32
	if bad.Validate() == nil {
		t.Error("row smaller than block accepted")
	}
}

func TestAddressMappingInterleaves(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	// Consecutive blocks must hit consecutive channels.
	for i := 0; i < 8; i++ {
		loc := m.Map(uint64(i * 64))
		if loc.Channel != i%4 {
			t.Errorf("block %d mapped to channel %d, want %d", i, loc.Channel, i%4)
		}
	}
	// After a full channel sweep, the bank advances.
	a := m.Map(0)
	b := m.Map(4 * 64)
	if b.Bank != (a.Bank+1)%8 {
		t.Errorf("bank did not advance: %+v -> %+v", a, b)
	}
}

func TestMappingStaysInBounds(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	f := func(addr uint64) bool {
		loc := m.Map(addr)
		return loc.Channel >= 0 && loc.Channel < 4 &&
			loc.Rank >= 0 && loc.Rank < 4 &&
			loc.Bank >= 0 && loc.Bank < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSingleReadLatency(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	if !m.Enqueue(Request{Addr: 0}) {
		t.Fatal("enqueue refused")
	}
	done := m.Tick(200)
	if len(done) != 1 {
		t.Fatalf("%d completions, want 1", len(done))
	}
	// Unloaded closed-page read at 800 MHz: tRCD(12) + tCL(12) + burst(4)
	// = 28 cycles = 35 ns (plus up to one scheduling cycle).
	lat := done[0].Latency
	if lat < 28 || lat > 30 {
		t.Errorf("unloaded latency = %d cycles, want ≈28", lat)
	}
}

func TestWriteCompletes(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	m.Enqueue(Request{Addr: 128, Write: true})
	done := m.Tick(200)
	if len(done) != 1 || !done[0].Req.Write {
		t.Fatalf("write did not complete: %+v", done)
	}
	if s := m.Stats(); s.Writes != 1 || s.Reads != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	// Two reads to the same bank, different rows: second must wait for
	// the first's full ACT..PRE cycle.
	stride := uint64(64 * 4 * 8 * 4 * 128) // same channel/bank/rank, different row
	m.Enqueue(Request{Addr: 0})
	m.Enqueue(Request{Addr: stride})
	done := m.Tick(400)
	if len(done) != 2 {
		t.Fatalf("%d completions, want 2", len(done))
	}
	if done[1].Latency < done[0].Latency+20 {
		t.Errorf("bank conflict not serialized: %d then %d", done[0].Latency, done[1].Latency)
	}
}

func TestBankParallelismOverlaps(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	// Reads to different banks on one channel overlap: aggregate time for
	// 8 requests must be far below 8x the serialized bank time.
	for i := 0; i < 8; i++ {
		m.Enqueue(Request{Addr: uint64(i) * 4 * 64}) // same channel, banks 0..7
	}
	done := m.Tick(600)
	if len(done) != 8 {
		t.Fatalf("%d completions, want 8", len(done))
	}
	last := done[7].Latency
	if last > 8*30 {
		t.Errorf("no bank overlap: last latency %d cycles", last)
	}
}

func TestWritebackPriorityKicksIn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteQueueDepth = 8
	m := mustNew(t, cfg)
	// Fill the write queue to half on one channel, then add a read; the
	// writes must be serviced ahead of the read once at half depth.
	for i := 0; i < 4; i++ {
		if !m.Enqueue(Request{Addr: uint64(i) * 4 * 64 * 8 * 4, Write: true}) {
			t.Fatal("write enqueue refused")
		}
	}
	m.Enqueue(Request{Addr: 64 * 4}) // different channel, irrelevant
	m.Enqueue(Request{Addr: 0})      // channel 0 read
	done := m.Tick(1000)
	if len(done) != 6 {
		t.Fatalf("%d completions, want 6", len(done))
	}
	// First completion on channel 0 must be a write.
	for _, d := range done {
		if m.Map(d.Req.Addr).Channel != 0 {
			continue
		}
		if !d.Req.Write {
			t.Error("read overtook a half-full writeback queue")
		}
		break
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadQueueDepth = 2
	m := mustNew(t, cfg)
	if !m.Enqueue(Request{Addr: 0}) || !m.Enqueue(Request{Addr: 16 * 64}) {
		t.Fatal("first two enqueues refused")
	}
	if m.Enqueue(Request{Addr: 32 * 64}) {
		t.Error("over-capacity enqueue accepted")
	}
}

func TestRefreshHappens(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	m.Tick(40000) // 50 µs at 800 MHz: several tREFI per rank
	if s := m.Stats(); s.Refreshes == 0 {
		t.Error("no refreshes issued")
	}
}

func TestPowerdownOnIdle(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	m.Tick(2000)
	if s := m.Stats(); s.PowerdownCyc == 0 {
		t.Error("idle ranks never powered down")
	}
	// Powerdown disabled: no powerdown cycles.
	cfg := DefaultConfig()
	cfg.PowerdownIdleCycles = 0
	m2 := mustNew(t, cfg)
	m2.Tick(2000)
	if s := m2.Stats(); s.PowerdownCyc != 0 {
		t.Error("powerdown happened despite being disabled")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	unloaded := avgLatencyAt(t, 800e6, 40)
	loaded := avgLatencyAt(t, 800e6, 4)
	if loaded <= unloaded {
		t.Errorf("loaded latency %.1f <= unloaded %.1f", loaded, unloaded)
	}
}

func TestLatencyGrowsAsFrequencyDrops(t *testing.T) {
	fast := avgLatencyNsAt(t, 800e6, 20)
	slow := avgLatencyNsAt(t, 200e6, 20)
	if slow <= fast {
		t.Errorf("latency at 200 MHz (%.1f ns) should exceed 800 MHz (%.1f ns)", slow, fast)
	}
}

// avgLatencyAt drives an open-loop uniform stream with one request per gap
// cycles per channel and returns mean latency in cycles.
func avgLatencyAt(t *testing.T, hz float64, gap int) float64 {
	t.Helper()
	cfg := DefaultConfig()
	cfg.BusHz = hz
	m := mustNew(t, cfg)
	addr := uint64(0)
	var total, count int64
	for i := 0; i < 20000; i++ {
		if i%gap == 0 {
			for c := 0; c < 4; c++ {
				m.Enqueue(Request{Addr: addr})
				addr += 64
			}
		}
		for _, d := range m.Tick(1) {
			total += d.Latency
			count++
		}
	}
	if count == 0 {
		t.Fatal("no completions")
	}
	return float64(total) / float64(count)
}

func avgLatencyNsAt(t *testing.T, hz float64, gap int) float64 {
	return avgLatencyAt(t, hz, gap) / hz * 1e9
}

func TestSetFrequencyDrainsAndRetimes(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	for i := 0; i < 32; i++ {
		m.Enqueue(Request{Addr: uint64(i * 64)})
	}
	pen, err := m.SetFrequency(400e6)
	if err != nil {
		t.Fatal(err)
	}
	// 512 cycles + 28 ns at 400 MHz (12 cycles).
	if pen < 512+11 || pen > 512+13 {
		t.Errorf("penalty = %d cycles", pen)
	}
	if !m.Idle() {
		t.Error("memory not idle after SetFrequency")
	}
	if m.BusHz() != 400e6 {
		t.Errorf("BusHz = %g", m.BusHz())
	}
	// Still serves requests after the change.
	m.Enqueue(Request{Addr: 0})
	if done := m.Tick(200); len(done) != 1 {
		t.Error("request lost after frequency change")
	}
	if _, err := m.SetFrequency(0); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	// Idle energy over 10 µs.
	m.Tick(8000)
	idleJ, secs := m.Energy()
	if idleJ <= 0 || secs <= 0 {
		t.Fatalf("idle energy %g over %g s", idleJ, secs)
	}
	idleW := idleJ / secs

	// Busy energy must be higher per unit time.
	m2 := mustNew(t, DefaultConfig())
	addr := uint64(0)
	for i := 0; i < 8000; i++ {
		if i%4 == 0 {
			m2.Enqueue(Request{Addr: addr})
			addr += 64
		}
		m2.Tick(1)
	}
	busyJ, busySecs := m2.Energy()
	busyW := busyJ / busySecs
	if busyW <= idleW {
		t.Errorf("busy power %.2f W <= idle power %.2f W", busyW, idleW)
	}
	// Order-of-magnitude check: 8 ECC ranks... 16 ranks total; idle
	// (mostly powered down) should be a few watts, busy tens of watts.
	if idleW < 1 || idleW > 40 {
		t.Errorf("idle power %.2f W implausible", idleW)
	}
	if busyW > 150 {
		t.Errorf("busy power %.2f W implausible", busyW)
	}
}

func TestDrainEmpty(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	done, cycles, err := m.Drain()
	if err != nil || len(done) != 0 || cycles != 0 {
		t.Errorf("Drain on idle = %v, %d, %v", done, cycles, err)
	}
}

func TestStatsOccupancyIntegrals(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	for i := 0; i < 16; i++ {
		m.Enqueue(Request{Addr: uint64(i * 64)})
	}
	m.Tick(100)
	s := m.Stats()
	if s.QueueOcc == 0 || s.BankOcc == 0 || s.BusBusy == 0 {
		t.Errorf("occupancy integrals empty: %+v", s)
	}
	if s.AvgReadLatency() <= 0 {
		t.Error("AvgReadLatency not positive")
	}
	if u := s.BusUtilization(4); u <= 0 || u > 1 {
		t.Errorf("BusUtilization = %g", u)
	}
}
