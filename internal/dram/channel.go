package dram

// channel is one DDR3 channel: queues, banks, ranks, the shared data bus and
// its statistics. All times are in bus cycles on the memory clock.
type channel struct {
	cfg *Config
	tm  *timing

	readQ  []queued
	writeQ []queued

	banks     [][]int64 // [rank][bank] -> cycle the bank is free for a new ACT
	busFreeAt int64

	// Open-page state: the row currently latched in each bank's row
	// buffer (meaningful only under Config.RowPolicy == OpenPage).
	rowOpen [][]bool
	openRow [][]uint64

	rankActiveUntil []int64 // rank has an open row until this cycle
	rankIdleSince   []int64
	rankPoweredDown []bool
	rankActs        [][]int64 // recent ACT issue cycles per rank (tFAW window)
	lastActAt       []int64   // last ACT per rank (tRRD)
	nextRefresh     []int64

	stats Stats

	// energy accounting: state cycle counts per rank aggregated
	activeStandbyCyc    int64
	prechargeStandbyCyc int64
	powerdownCyc        int64
	refreshCyc          int64
	readBurstCyc        int64
	writeBurstCyc       int64
	acts                int64
}

type queued struct {
	req Request
	loc Location
}

func newChannel(cfg *Config, tm *timing) *channel {
	ranks := cfg.RanksPerChannel()
	ch := &channel{cfg: cfg, tm: tm}
	ch.banks = make([][]int64, ranks)
	ch.rowOpen = make([][]bool, ranks)
	ch.openRow = make([][]uint64, ranks)
	for r := range ch.banks {
		ch.banks[r] = make([]int64, cfg.BanksPerRank)
		ch.rowOpen[r] = make([]bool, cfg.BanksPerRank)
		ch.openRow[r] = make([]uint64, cfg.BanksPerRank)
	}
	ch.rankActiveUntil = make([]int64, ranks)
	ch.rankIdleSince = make([]int64, ranks)
	ch.rankPoweredDown = make([]bool, ranks)
	ch.rankActs = make([][]int64, ranks)
	ch.lastActAt = make([]int64, ranks)
	ch.nextRefresh = make([]int64, ranks)
	for r := 0; r < ranks; r++ {
		ch.lastActAt[r] = -1 << 40
		// Stagger refreshes across ranks.
		ch.nextRefresh[r] = tm.refreshEvery * int64(r+1) / int64(ranks)
	}
	return ch
}

// retime resets frequency-dependent schedule state after a clock change
// (queues are drained at that point).
func (ch *channel) retime(now int64) {
	for r := range ch.nextRefresh {
		ch.nextRefresh[r] = now + ch.tm.refreshEvery*int64(r+1)/int64(len(ch.nextRefresh))
		ch.lastActAt[r] = -1 << 40
		ch.rankActs[r] = nil
	}
	ch.busFreeAt = now
}

func (ch *channel) enqueue(r Request, loc Location) bool {
	q := queued{req: r, loc: loc}
	if r.Write {
		if len(ch.writeQ) >= ch.cfg.WriteQueueDepth {
			return false
		}
		ch.writeQ = append(ch.writeQ, q)
	} else {
		if len(ch.readQ) >= ch.cfg.ReadQueueDepth {
			return false
		}
		ch.readQ = append(ch.readQ, q)
	}
	return true
}

func (ch *channel) idle(now int64) bool {
	if len(ch.readQ) > 0 || len(ch.writeQ) > 0 {
		return false
	}
	for _, rank := range ch.banks {
		for _, free := range rank {
			if free > now {
				return false
			}
		}
	}
	return ch.busFreeAt <= now
}

// step advances one bus cycle: refresh, scheduling, statistics and energy
// state accounting.
func (ch *channel) step(now int64, done *[]Completion) {
	ch.refresh(now)
	ch.schedule(now, done)
	ch.account(now)
}

// refresh issues a per-rank refresh when due and the rank is quiescent.
func (ch *channel) refresh(now int64) {
	for r := range ch.nextRefresh {
		if now < ch.nextRefresh[r] {
			continue
		}
		if !ch.rankQuiescent(r, now) {
			continue // postponed until the rank drains
		}
		for b := range ch.banks[r] {
			ch.banks[r][b] = now + ch.tm.tRFC
			ch.rowOpen[r][b] = false // refresh precharges all banks
		}
		ch.rankActiveUntil[r] = now // open rows closed; rank idles after tRFC
		ch.rankPoweredDown[r] = false
		ch.rankIdleSince[r] = now + ch.tm.tRFC
		ch.refreshCyc += ch.tm.tRFC
		ch.stats.Refreshes++
		ch.nextRefresh[r] += ch.tm.refreshEvery
	}
}

func (ch *channel) rankQuiescent(r int, now int64) bool {
	for _, free := range ch.banks[r] {
		if free > now {
			return false
		}
	}
	return true
}

// schedule issues at most one command stream start per cycle: FCFS, reads
// prioritized over writebacks until the writeback queue is half full.
func (ch *channel) schedule(now int64, done *[]Completion) {
	writesFirst := len(ch.writeQ) >= ch.cfg.WriteQueueDepth/2
	var issued bool
	if writesFirst {
		issued = ch.tryIssue(&ch.writeQ, now, done)
		if !issued {
			issued = ch.tryIssue(&ch.readQ, now, done)
		}
	} else {
		issued = ch.tryIssue(&ch.readQ, now, done)
		if !issued {
			_ = ch.tryIssue(&ch.writeQ, now, done)
		}
	}
}

// tryIssue attempts to issue the head of q at cycle now. Under closed-page
// management every request is ACT + RD/WR with auto-precharge; under
// open-page management a row-buffer hit skips the activate (and its tRRD /
// tFAW constraints), a conflict pays an extra precharge, and rows stay open
// until a conflict or refresh closes them.
func (ch *channel) tryIssue(q *[]queued, now int64, done *[]Completion) bool {
	if len(*q) == 0 {
		return false
	}
	head := (*q)[0]
	r, b := head.loc.Rank, head.loc.Bank

	openPage := ch.cfg.RowPolicy == OpenPage
	rowHit := openPage && ch.rowOpen[r][b] && ch.openRow[r][b] == head.loc.Row
	rowConflict := openPage && ch.rowOpen[r][b] && !rowHit

	actAt := now
	// Powerdown exit penalty.
	if ch.rankPoweredDown[r] {
		actAt += ch.tm.tXP
	}
	// Bank must be free.
	if ch.banks[r][b] > now {
		return false
	}
	if !rowHit {
		// An activate will issue: tRRD window.
		if actAt < ch.lastActAt[r]+ch.tm.tRRD {
			return false
		}
		// tFAW: at most 4 activates per rank in any tFAW window.
		acts := ch.rankActs[r]
		if len(acts) >= 4 && actAt < acts[len(acts)-4]+ch.tm.tFAW {
			return false
		}
	}
	// Command timing up to the data burst.
	lead := ch.tm.tRCD // closed page / open-bank miss: ACT then CAS
	switch {
	case rowHit:
		lead = 0 // CAS only
	case rowConflict:
		lead = ch.tm.tRP + ch.tm.tRCD // PRE, ACT, CAS
	}
	burstStart := actAt + lead + ch.tm.tCL
	// Data bus availability at transfer time.
	if burstStart < ch.busFreeAt {
		return false
	}

	// Issue.
	burstEnd := burstStart + ch.tm.burst
	ch.busFreeAt = burstEnd
	var bankFree int64
	if head.req.Write {
		bankFree = burstEnd + ch.tm.tWR
		if !openPage {
			bankFree += ch.tm.tRP // auto-precharge
		}
		ch.writeBurstCyc += ch.tm.burst
		ch.stats.Writes++
		ch.stats.RetiredWrites++
	} else {
		if openPage {
			bankFree = burstEnd // row stays open
		} else {
			rtp := actAt + ch.tm.tRCD + ch.tm.tRTP
			if min := actAt + ch.tm.tRAS; rtp < min {
				rtp = min
			}
			bankFree = rtp + ch.tm.tRP
		}
		ch.readBurstCyc += ch.tm.burst
		ch.stats.Reads++
	}
	if !rowHit {
		if min := actAt + lead - ch.tm.tRCD + ch.tm.tRAS; bankFree < min {
			bankFree = min // tRAS from the activate
		}
		if !openPage {
			if min := actAt + ch.tm.tRAS + ch.tm.tRP; bankFree < min {
				bankFree = min
			}
		}
	}
	if openPage {
		ch.rowOpen[r][b] = true
		ch.openRow[r][b] = head.loc.Row
		if rowHit {
			ch.stats.RowHits++
		} else {
			ch.stats.RowMisses++
		}
	} else {
		ch.stats.RowMisses++ // every closed-page access opens its row
	}
	ch.banks[r][b] = bankFree
	if !rowHit {
		// Activate bookkeeping: tRRD/tFAW windows and energy.
		ch.lastActAt[r] = actAt
		ch.rankActs[r] = append(ch.rankActs[r], actAt)
		if len(ch.rankActs[r]) > 8 {
			ch.rankActs[r] = ch.rankActs[r][len(ch.rankActs[r])-8:]
		}
		ch.stats.Activates++
		ch.acts++
	}
	ch.rankPoweredDown[r] = false
	if bankFree > ch.rankActiveUntil[r] {
		ch.rankActiveUntil[r] = bankFree
	}
	ch.stats.BusBusy += ch.tm.burst
	ch.stats.LatencySum += burstEnd - head.req.arrival
	*done = append(*done, Completion{Req: head.req, Latency: burstEnd - head.req.arrival})
	*q = (*q)[1:]
	return true
}

// account samples per-cycle occupancy and rank power states.
func (ch *channel) account(now int64) {
	ch.stats.QueueOcc += int64(len(ch.readQ) + len(ch.writeQ))
	busy := int64(0)
	for _, rank := range ch.banks {
		for _, free := range rank {
			if free > now {
				busy++
			}
		}
	}
	ch.stats.BankOcc += busy

	for r := range ch.rankActiveUntil {
		// Under open-page management a rank with any open row burns
		// active-standby power regardless of command activity.
		openRows := false
		if ch.cfg.RowPolicy == OpenPage {
			for b := range ch.rowOpen[r] {
				if ch.rowOpen[r][b] {
					openRows = true
					break
				}
			}
		}
		switch {
		case openRows || ch.rankActiveUntil[r] > now:
			ch.activeStandbyCyc++
			ch.stats.ActiveCycles++
			ch.rankIdleSince[r] = now + 1
		case ch.rankPoweredDown[r]:
			ch.powerdownCyc++
			ch.stats.PowerdownCyc++
		default:
			ch.prechargeStandbyCyc++
			if ch.cfg.PowerdownIdleCycles > 0 && now-ch.rankIdleSince[r] >= int64(ch.cfg.PowerdownIdleCycles) {
				ch.rankPoweredDown[r] = true
			}
		}
	}
}

// energy converts state-cycle counts into joules using the Micron
// methodology: P_state = IDD_state × VDD × devices; E = Σ P × cycles / f.
// Activate-precharge energy uses the (IDD0 − IDD3N) increment over tRC, and
// burst energy the (IDD4 − IDD3N) increment over the burst.
func (ch *channel) energy(cfg *Config) float64 {
	perDev := cfg.VDD * float64(cfg.DevicesPerRank)
	f := cfg.BusHz
	cycSec := 1.0 / f

	e := 0.0
	e += cfg.IDD3N * perDev * float64(ch.activeStandbyCyc) * cycSec
	e += cfg.IDD2N * perDev * float64(ch.prechargeStandbyCyc) * cycSec
	e += cfg.IDD2P * perDev * float64(ch.powerdownCyc) * cycSec
	e += cfg.IDD5 * perDev * float64(ch.refreshCyc) * cycSec

	tRC := float64(cyc(cfg.TRASNs+cfg.TRPNs, f))
	e += (cfg.IDD0 - cfg.IDD3N) * perDev * float64(ch.acts) * tRC * cycSec
	e += (cfg.IDD4R - cfg.IDD3N) * perDev * float64(ch.readBurstCyc) * cycSec
	e += (cfg.IDD4W - cfg.IDD3N) * perDev * float64(ch.writeBurstCyc) * cycSec
	return e
}
