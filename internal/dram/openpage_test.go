package dram

import "testing"

func openPageConfig() Config {
	cfg := DefaultConfig()
	cfg.RowPolicy = OpenPage
	return cfg
}

func TestOpenPageRowHitIsFaster(t *testing.T) {
	m := mustNew(t, openPageConfig())
	// Two reads to the same row: the second is a CAS-only row hit.
	m.Enqueue(Request{Addr: 0})
	first := m.Tick(100)
	if len(first) != 1 {
		t.Fatalf("first read incomplete")
	}
	// Re-reading block 0 is a guaranteed row hit under open-page.
	m.Enqueue(Request{Addr: 0})
	second := m.Tick(100)
	if len(second) != 1 {
		t.Fatalf("second read incomplete (%d)", len(second))
	}
	// Row hit: tCL(12) + burst(4) = 16 cycles vs 28 for a cold access.
	if second[len(second)-1].Latency >= first[0].Latency {
		t.Errorf("row hit latency %d not below cold latency %d",
			second[len(second)-1].Latency, first[0].Latency)
	}
	if s := m.Stats(); s.RowHits == 0 {
		t.Error("no row hits recorded")
	}
}

func TestOpenPageConflictIsSlower(t *testing.T) {
	m := mustNew(t, openPageConfig())
	m.Enqueue(Request{Addr: 0})
	m.Tick(100)
	// Same bank, different row: blocks advance bank every 4 (channels);
	// row bits sit above rank: block = 128*interleave... Use the Map to
	// find a conflicting address.
	base := m.Map(0)
	var conflict uint64
	for blk := uint64(1); blk < 1<<20; blk++ {
		addr := blk * 64
		loc := m.Map(addr)
		if loc.Channel == base.Channel && loc.Rank == base.Rank && loc.Bank == base.Bank && loc.Row != base.Row {
			conflict = addr
			break
		}
	}
	if conflict == 0 {
		t.Fatal("no conflicting address found")
	}
	m.Enqueue(Request{Addr: conflict})
	done := m.Tick(200)
	if len(done) != 1 {
		t.Fatalf("conflict read incomplete")
	}
	// Conflict pays PRE + ACT + CAS: 12+12+12+4 = 40 cycles minimum.
	if done[0].Latency < 38 {
		t.Errorf("row conflict latency %d too low", done[0].Latency)
	}
	if s := m.Stats(); s.RowHitRate() != 0 {
		t.Errorf("conflict counted as hit: %+v", s)
	}
}

func TestClosedPageNeverHitsRows(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	for i := 0; i < 8; i++ {
		m.Enqueue(Request{Addr: 0}) // same block repeatedly
		m.Tick(100)
	}
	if s := m.Stats(); s.RowHits != 0 || s.RowMisses == 0 {
		t.Errorf("closed-page row stats = %d hits / %d misses", s.RowHits, s.RowMisses)
	}
}

func TestOpenPageSavesActivatesOnSequentialStream(t *testing.T) {
	run := func(policy RowPolicy) Stats {
		cfg := DefaultConfig()
		cfg.RowPolicy = policy
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr := uint64(0)
		for i := 0; i < 4000; i++ {
			if i%4 == 0 {
				m.Enqueue(Request{Addr: addr})
				addr += 64 // perfectly sequential: high row locality
			}
			m.Tick(1)
		}
		m.Tick(200)
		return m.Stats()
	}
	open := run(OpenPage)
	closed := run(ClosedPage)
	if open.Activates >= closed.Activates {
		t.Errorf("open-page activates %d should be below closed-page %d on a sequential stream",
			open.Activates, closed.Activates)
	}
	if open.RowHitRate() < 0.5 {
		t.Errorf("sequential stream row-hit rate %.2f too low", open.RowHitRate())
	}
}

// TestClosedPageWinsOnBankConflicts reproduces the §4.1 claim: with many
// cores generating low-locality interleaved traffic, closed-page (which
// precharges eagerly) beats open-page (which pays a precharge on every
// conflict) on average latency.
func TestClosedPageWinsOnBankConflicts(t *testing.T) {
	run := func(policy RowPolicy) float64 {
		cfg := DefaultConfig()
		cfg.RowPolicy = policy
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// 16 independent strided streams (one per "core") hammering
		// rotating rows: almost every open-page access conflicts.
		rng := uint64(12345)
		for i := 0; i < 30000; i++ {
			if i%3 == 0 {
				rng = rng*6364136223846793005 + 1442695040888963407
				m.Enqueue(Request{Addr: (rng >> 16) % (1 << 30) / 64 * 64})
			}
			m.Tick(1)
		}
		m.Tick(500)
		s := m.Stats()
		return s.AvgReadLatency()
	}
	open := run(OpenPage)
	closed := run(ClosedPage)
	t.Logf("random traffic avg latency: closed-page %.1f cycles, open-page %.1f cycles", closed, open)
	if closed >= open {
		t.Errorf("closed-page (%.1f) should beat open-page (%.1f) on low-locality multicore traffic", closed, open)
	}
}
