package sim

import (
	"errors"
	"fmt"

	"coscale/internal/freq"
)

// ErrInvalidConfig is the sentinel every configuration-validation error
// matches via errors.Is, so callers can branch on "bad config" without
// enumerating field-specific *ConfigError values.
var ErrInvalidConfig = errors.New("sim: invalid configuration")

// ConfigError reports one rejected Config field. It unwraps to
// ErrInvalidConfig.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid Config.%s: %s", e.Field, e.Reason)
}

// Is reports whether target is ErrInvalidConfig, making every field error
// match the sentinel.
func (e *ConfigError) Is(target error) bool { return target == ErrInvalidConfig }

// validateRaw rejects fields that are nonsensical even before defaulting.
// Zero values are legal everywhere (they select the paper's defaults);
// negative or out-of-range values are configuration bugs and must not be
// silently "defaulted over".
func (c Config) validateRaw() error {
	if c.Gamma < 0 || c.Gamma > 1 {
		return &ConfigError{Field: "Gamma", Reason: fmt.Sprintf("bound %g outside [0, 1] (0 selects the default 0.10)", c.Gamma)}
	}
	if c.EpochLen < 0 {
		return &ConfigError{Field: "EpochLen", Reason: "must be non-negative"}
	}
	if c.ProfileLen < 0 {
		return &ConfigError{Field: "ProfileLen", Reason: "must be non-negative"}
	}
	if c.LLCSizeMB < 0 {
		return &ConfigError{Field: "LLCSizeMB", Reason: "must be non-negative"}
	}
	if c.SubSteps < 0 {
		return &ConfigError{Field: "SubSteps", Reason: "must be non-negative"}
	}
	if c.MaxEpochs < 0 {
		return &ConfigError{Field: "MaxEpochs", Reason: "must be non-negative"}
	}
	if c.MigrateEvery < 0 {
		return &ConfigError{Field: "MigrateEvery", Reason: "must be non-negative"}
	}
	return nil
}

// validate checks the fully defaulted configuration: relational constraints
// between windows, ladder well-formedness, memory-system shape and the fault
// scenario.
func (c Config) validate() error {
	if c.Mix.Cores() == 0 {
		return &ConfigError{Field: "Mix", Reason: "requires a workload mix with at least one application"}
	}
	if c.ProfileLen >= c.EpochLen {
		return &ConfigError{Field: "ProfileLen",
			Reason: fmt.Sprintf("profiling window %v must be shorter than the epoch %v", c.ProfileLen, c.EpochLen)}
	}
	if err := validateLadder("CoreLadder", c.CoreLadder); err != nil {
		return err
	}
	if err := validateLadder("MemLadder", c.MemLadder); err != nil {
		return err
	}
	if c.Mem.Channels <= 0 {
		return &ConfigError{Field: "Mem.Channels", Reason: "must be positive"}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return &ConfigError{Field: "Faults", Reason: err.Error()}
		}
	}
	return nil
}

// validateLadder rejects ladders the control loop cannot reason about: every
// point needs positive frequency and voltage, and steps must be strictly
// decreasing in frequency (step 0 is max; duplicate or reordered frequencies
// break Nearest and the policies' step arithmetic).
func validateLadder(field string, l *freq.Ladder) error {
	if l == nil || l.Steps() == 0 {
		return &ConfigError{Field: field, Reason: "ladder has no steps"}
	}
	pts := l.Points()
	for i, p := range pts {
		if p.Hz <= 0 {
			return &ConfigError{Field: field, Reason: fmt.Sprintf("step %d has non-positive frequency %g Hz", i, p.Hz)}
		}
		if p.Volts <= 0 {
			return &ConfigError{Field: field, Reason: fmt.Sprintf("step %d has non-positive voltage %g V", i, p.Volts)}
		}
		if i > 0 && p.Hz >= pts[i-1].Hz {
			return &ConfigError{Field: field,
				Reason: fmt.Sprintf("frequencies must be strictly decreasing: step %d (%g Hz) >= step %d (%g Hz)", i, p.Hz, i-1, pts[i-1].Hz)}
		}
	}
	return nil
}
