package sim

import (
	"errors"
	"math"
	"testing"
	"time"

	"coscale/internal/core"
	"coscale/internal/freq"
	"coscale/internal/policy"
	"coscale/internal/workload"
)

// testConfig returns a fast configuration: reduced instruction budget so a
// run completes in a few dozen epochs.
func testConfig(t *testing.T, mixName string) Config {
	t.Helper()
	return Config{
		Mix:         workload.MustGet(mixName),
		InstrBudget: 40_000_000,
	}
}

// must unwraps a constructor's (value, error) pair for test setup; a
// non-nil error is a broken fixture, reported by panicking (Go forbids
// f(t, g()) with a multi-valued g, so the helper cannot also take t).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// run executes a config, failing the test on error.
func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// degradations returns per-app slowdown of res vs base, matched by core.
func degradations(t *testing.T, base, res *Result) []float64 {
	t.Helper()
	out := make([]float64, len(res.Apps))
	for i := range res.Apps {
		if base.Apps[i].FinishTime <= 0 {
			t.Fatalf("baseline app %d has no finish time", i)
		}
		out[i] = res.Apps[i].FinishTime/base.Apps[i].FinishTime - 1
	}
	return out
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestBaselineRunCompletes(t *testing.T) {
	for _, mix := range []string{"ILP1", "MID1", "MEM1", "MIX2"} {
		res := run(t, testConfig(t, mix))
		if res.Epochs == 0 || res.WallTime <= 0 {
			t.Errorf("%s: degenerate run %+v", mix, res)
		}
		if res.Energy.Total() <= 0 {
			t.Errorf("%s: no energy accumulated", mix)
		}
		for _, a := range res.Apps {
			if a.FinishTime <= 0 {
				t.Errorf("%s: app %s never finished", mix, a.App)
			}
			if a.Instructions < 40_000_000-1000 { // tolerance for truncation rounding
				t.Errorf("%s: app %s committed %d instructions, want >= budget", mix, a.App, a.Instructions)
			}
		}
	}
}

func TestBaselineMemSlowerThanILP(t *testing.T) {
	ilp := run(t, testConfig(t, "ILP1"))
	mem := run(t, testConfig(t, "MEM1"))
	if mem.WallTime <= ilp.WallTime {
		t.Errorf("MEM1 (%.3fs) should run slower than ILP1 (%.3fs)", mem.WallTime, ilp.WallTime)
	}
}

func TestCoScaleMeetsBoundAndSavesEnergy(t *testing.T) {
	for _, mix := range []string{"ILP1", "MID1", "MEM1", "MIX2"} {
		base := run(t, testConfig(t, mix))

		cfg := testConfig(t, mix)
		cfg.Policy = must(core.New(cfg.PolicyConfig()))
		res := run(t, cfg)

		deg := degradations(t, base, res)
		worst := maxOf(deg)
		if worst > 0.10+0.01 {
			t.Errorf("%s: CoScale worst degradation %.1f%% exceeds 10%% bound", mix, worst*100)
		}
		save := 1 - res.Energy.Total()/base.Energy.Total()
		t.Logf("%s: CoScale energy savings %.1f%%, worst degradation %.1f%%, epochs %d",
			mix, save*100, worst*100, res.Epochs)
		if save < 0.05 {
			t.Errorf("%s: CoScale saved only %.1f%% energy", mix, save*100)
		}
	}
}

func TestUncoordinatedViolatesBound(t *testing.T) {
	// The headline motivation (Figs. 1, 9): independent managers double-
	// spend the slack. Across the mixes, Uncoordinated's worst-case
	// degradation must exceed the bound somewhere.
	worstAnywhere := 0.0
	for _, mix := range []string{"MID1", "MEM1", "MIX2"} {
		base := run(t, testConfig(t, mix))
		cfg := testConfig(t, mix)
		cfg.Policy = must(policy.NewUncoordinated(cfg.PolicyConfig()))
		res := run(t, cfg)
		w := maxOf(degradations(t, base, res))
		t.Logf("%s: Uncoordinated worst degradation %.1f%%", mix, w*100)
		if w > worstAnywhere {
			worstAnywhere = w
		}
	}
	if worstAnywhere <= 0.105 {
		t.Errorf("Uncoordinated never violated the 10%% bound (worst %.1f%%); managers are not double-spending", worstAnywhere*100)
	}
}

func TestSemiCoordinatedMeetsBoundButSavesLessThanCoScale(t *testing.T) {
	var semiTotal, coTotal float64
	for _, mix := range []string{"MID1", "MEM2", "MIX2"} {
		base := run(t, testConfig(t, mix))

		cfg := testConfig(t, mix)
		cfg.Policy = must(policy.NewSemiCoordinated(cfg.PolicyConfig()))
		semi := run(t, cfg)
		w := maxOf(degradations(t, base, semi))
		if w > 0.10+0.015 {
			t.Errorf("%s: Semi-coordinated violated bound: %.1f%%", mix, w*100)
		}

		cfg2 := testConfig(t, mix)
		cfg2.Policy = must(core.New(cfg2.PolicyConfig()))
		co := run(t, cfg2)

		semiSave := 1 - semi.Energy.Total()/base.Energy.Total()
		coSave := 1 - co.Energy.Total()/base.Energy.Total()
		t.Logf("%s: semi %.1f%% vs coscale %.1f%%", mix, semiSave*100, coSave*100)
		semiTotal += semiSave
		coTotal += coSave
	}
	if coTotal < semiTotal-0.005 {
		t.Errorf("CoScale total savings %.3f should be >= Semi-coordinated %.3f", coTotal, semiTotal)
	}
}

func TestOfflineAtLeastMatchesCoScale(t *testing.T) {
	var offTotal, coTotal float64
	for _, mix := range []string{"MID1", "MIX2"} {
		base := run(t, testConfig(t, mix))
		cfg := testConfig(t, mix)
		cfg.Policy = must(policy.NewOffline(cfg.PolicyConfig()))
		off := run(t, cfg)
		w := maxOf(degradations(t, base, off))
		if w > 0.10+0.015 {
			t.Errorf("%s: Offline violated bound: %.1f%%", mix, w*100)
		}
		cfg2 := testConfig(t, mix)
		cfg2.Policy = must(core.New(cfg2.PolicyConfig()))
		co := run(t, cfg2)
		offTotal += 1 - off.Energy.Total()/base.Energy.Total()
		coTotal += 1 - co.Energy.Total()/base.Energy.Total()
	}
	t.Logf("offline total %.3f, coscale total %.3f", offTotal, coTotal)
	// CoScale should come close to Offline (within a few points total).
	if coTotal < offTotal-0.06 {
		t.Errorf("CoScale (%.3f) far below Offline (%.3f)", coTotal, offTotal)
	}
}

func TestSingleKnobPoliciesSaveLessSystemEnergy(t *testing.T) {
	mix := "MID1"
	base := run(t, testConfig(t, mix))

	results := map[string]float64{}
	for name, mk := range map[string]func(policy.Config) (policy.Policy, error){
		"MemScale": func(c policy.Config) (policy.Policy, error) { return policy.NewMemScale(c) },
		"CPUOnly":  func(c policy.Config) (policy.Policy, error) { return policy.NewCPUOnly(c) },
		"CoScale":  func(c policy.Config) (policy.Policy, error) { return core.New(c) },
	} {
		cfg := testConfig(t, mix)
		cfg.Policy = must(mk(cfg.PolicyConfig()))
		res := run(t, cfg)
		if w := maxOf(degradations(t, base, res)); w > 0.10+0.015 {
			t.Errorf("%s violated bound: %.1f%%", name, w*100)
		}
		results[name] = 1 - res.Energy.Total()/base.Energy.Total()
		t.Logf("%s savings: %.1f%%", name, results[name]*100)
	}
	if results["CoScale"] <= results["MemScale"] || results["CoScale"] <= results["CPUOnly"] {
		t.Errorf("CoScale (%.3f) should beat MemScale (%.3f) and CPUOnly (%.3f)",
			results["CoScale"], results["MemScale"], results["CPUOnly"])
	}
}

func TestTimelineRecording(t *testing.T) {
	cfg := testConfig(t, "MIX2")
	cfg.Policy = must(core.New(cfg.PolicyConfig()))
	cfg.RecordTimeline = true
	res := run(t, cfg)
	if len(res.Timeline) != res.Epochs {
		t.Fatalf("timeline has %d records for %d epochs", len(res.Timeline), res.Epochs)
	}
	for _, rec := range res.Timeline {
		if rec.MemHz <= 0 || len(rec.CoreHz) != 16 {
			t.Fatalf("bad record %+v", rec)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		field  string
		mutate func(*Config)
	}{
		{"no mix", "Mix", func(c *Config) { c.Mix = workload.Mix{} }},
		{"profile >= epoch", "ProfileLen", func(c *Config) { c.ProfileLen = 10 * time.Millisecond }},
		{"negative profile", "ProfileLen", func(c *Config) { c.ProfileLen = -time.Microsecond }},
		{"gamma > 1", "Gamma", func(c *Config) { c.Gamma = 1.5 }},
		{"gamma < 0", "Gamma", func(c *Config) { c.Gamma = -0.1 }},
		{"negative substeps", "SubSteps", func(c *Config) { c.SubSteps = -1 }},
		{"negative max epochs", "MaxEpochs", func(c *Config) { c.MaxEpochs = -1 }},
		{"negative migrate", "MigrateEvery", func(c *Config) { c.MigrateEvery = -2 }},
		{"degenerate ladder", "CoreLadder", func(c *Config) {
			// min == max with several steps yields duplicate frequencies.
			l, err := freq.NewLadder(2e9, 2e9, 1.0, 1.0, 4)
			if err != nil {
				t.Fatal(err)
			}
			c.CoreLadder = l
		}},
	}
	for _, tc := range cases {
		cfg := testConfig(t, "ILP1")
		tc.mutate(&cfg)
		_, err := New(cfg)
		if err == nil {
			t.Errorf("%s: New succeeded", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not match ErrInvalidConfig", tc.name, err)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
		} else if ce.Field != tc.field {
			t.Errorf("%s: error on field %s, want %s (%v)", tc.name, ce.Field, tc.field, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Result {
		cfg := testConfig(t, "MID2")
		cfg.Policy = must(core.New(cfg.PolicyConfig()))
		return run(t, cfg)
	}
	a, b := mk(), mk()
	if a.WallTime != b.WallTime || a.Energy != b.Energy || a.Epochs != b.Epochs {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}
