package sim

import (
	"errors"
	"reflect"
	"testing"

	"coscale/internal/core"
	"coscale/internal/fault"
	"coscale/internal/workload"
)

// faultScenario is a scenario exercising every injection mechanism at once.
func faultScenario() *fault.Config {
	return &fault.Config{
		Seed: 0xC05CA1E,
		Counters: fault.CounterFaults{
			Noise:     0.05,
			Bias:      0.02,
			StaleProb: 0.1,
			DropProb:  0.02,
		},
		Actuation: fault.ActuationFaults{
			DropProb:           0.1,
			LagEpochs:          2,
			StuckProb:          0.02,
			StuckEpochs:        3,
			ThermalProb:        0.01,
			ThermalEpochs:      5,
			ThermalMinCoreStep: 4,
		},
		PowerBias: 0.05,
	}
}

// resultsEqual compares two results bit-for-bit (float equality here is
// exact-representation equality, which is the point).
func resultsEqual(a, b *Result) bool {
	return a.Epochs == b.Epochs &&
		a.WallTime == b.WallTime &&
		a.Energy == b.Energy &&
		a.TotalInstructions == b.TotalInstructions &&
		reflect.DeepEqual(a.Apps, b.Apps)
}

// TestFaultDeterminism: identical fault seed + scenario → bit-identical
// Result across independent runs and after Engine.Reset.
func TestFaultDeterminism(t *testing.T) {
	mk := func() (*Engine, *Result) {
		cfg := testConfig(t, "MID1")
		cfg.Faults = faultScenario()
		cfg.Policy = must(core.New(cfg.PolicyConfig()))
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return eng, res
	}
	eng, first := mk()
	_, second := mk()
	if !resultsEqual(first, second) {
		t.Errorf("independent runs with the same fault seed differ:\n%+v\n%+v", first, second)
	}
	st := eng.FaultStats()
	if st == (fault.Stats{}) {
		t.Error("scenario injected no events at all")
	}

	// Replay on the same engine: Reset + a fresh policy must replay the
	// identical fault sequence.
	cfg := testConfig(t, "MID1")
	cfg.Faults = faultScenario()
	eng.Reset()
	eng.SetPolicy(must(core.New(cfg.PolicyConfig())))
	third, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(first, third) {
		t.Errorf("rerun after Reset differs:\n%+v\n%+v", first, third)
	}
	if eng.FaultStats() != st {
		t.Errorf("fault stats differ after Reset replay: %+v vs %+v", eng.FaultStats(), st)
	}
}

// TestZeroFaultConfigMatchesNil: a non-nil scenario that injects nothing must
// be bit-identical to running without any injector (the golden-compatible
// path), regardless of seed.
func TestZeroFaultConfigMatchesNil(t *testing.T) {
	mk := func(f *fault.Config) *Result {
		cfg := testConfig(t, "MID2")
		cfg.Faults = f
		cfg.Policy = must(core.New(cfg.PolicyConfig()))
		return run(t, cfg)
	}
	base := mk(nil)
	zero := mk(&fault.Config{Seed: 987654321})
	if !resultsEqual(base, zero) {
		t.Errorf("zero-value fault config perturbed the run:\n%+v\n%+v", base, zero)
	}
}

// TestFaultConfigValidatedByNew: a bad scenario is rejected as a typed sim
// configuration error.
func TestFaultConfigValidatedByNew(t *testing.T) {
	cfg := testConfig(t, "ILP1")
	cfg.Faults = &fault.Config{Counters: fault.CounterFaults{Noise: 2}}
	_, err := New(cfg)
	if err == nil {
		t.Fatal("New accepted an invalid fault scenario")
	}
	if !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("error %v does not match ErrInvalidConfig", err)
	}
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "Faults" {
		t.Errorf("error %v is not a *ConfigError on Faults", err)
	}
}

// TestStepZeroAllocWithFaults extends the alloc-budget gate to the injected
// configuration: the fault hooks must stay allocation-free too.
func TestStepZeroAllocWithFaults(t *testing.T) {
	cfg := Config{Mix: workload.MustGet("MID1"), InstrBudget: 1 << 50}
	cfg.Faults = faultScenario()
	cfg.Policy = must(core.New(cfg.PolicyConfig()))
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epoch := 0
	step := func() { eng.step(epoch, false); epoch++ }
	for i := 0; i < 4; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Errorf("step with fault injection allocates %.1f times per epoch, want 0", avg)
	}
}
