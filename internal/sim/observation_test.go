package sim

import (
	"math"
	"testing"
	"time"

	"coscale/internal/policy"
	"coscale/internal/workload"
)

// capturePolicy records the observations it is given and keeps everything at
// maximum frequency. Observations are cloned because the engine reuses their
// backing slices between epochs.
type capturePolicy struct {
	decides  []policy.Observation
	observes []policy.Observation
	n        int
}

func (p *capturePolicy) Name() string { return "Capture" }
func (p *capturePolicy) Decide(obs policy.Observation) policy.Decision {
	p.decides = append(p.decides, obs.Clone())
	return policy.Decision{CoreSteps: policy.ZeroSteps(p.n), MemStep: 0}
}
func (p *capturePolicy) Observe(obs policy.Observation) { p.observes = append(p.observes, obs.Clone()) }

// TestObservationRoundTrip checks the honest counter path: the statistics a
// controller derives from profiling-window counters must match the true
// trace statistics that generated them.
func TestObservationRoundTrip(t *testing.T) {
	cfg := Config{Mix: workload.MustGet("MID1"), InstrBudget: 20_000_000}
	cap := &capturePolicy{n: 16}
	cfg.Policy = cap
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cap.decides) == 0 || len(cap.observes) == 0 {
		t.Fatal("policy never invoked")
	}

	// Second epoch's profiling observation (first profiles a cold start
	// but positions are still near zero, so compare against the profile).
	obs := cap.decides[0]
	profiles, _ := cfg.Mix.Profiles()
	for i, p := range profiles {
		st := p.At(0)
		co := obs.Cores[i]
		if co.Instructions == 0 {
			t.Fatalf("core %d: no instructions profiled", i)
		}
		if rel := math.Abs(co.Stats.CPIBase-st.CPIBase) / st.CPIBase; rel > 0.05 {
			t.Errorf("core %d (%s): observed CPIBase %.3f vs true %.3f", i, p.Name, co.Stats.CPIBase, st.CPIBase)
		}
		wantAlpha := st.L2APKI / 1000
		if rel := math.Abs(co.Stats.Alpha-wantAlpha) / wantAlpha; rel > 0.05 {
			t.Errorf("core %d (%s): observed alpha %.5f vs true %.5f", i, p.Name, co.Stats.Alpha, wantAlpha)
		}
		// StallL2 is the fixed 7.5 ns L2 hit time.
		if co.Stats.StallL2 < 6e-9 || co.Stats.StallL2 > 9e-9 {
			t.Errorf("core %d: observed StallL2 %.3g", i, co.Stats.StallL2)
		}
		// In-order cores: derived MLP must be ~1.
		if co.Stats.MLP > 1.15 {
			t.Errorf("core %d: derived MLP %.2f for an in-order core", i, co.Stats.MLP)
		}
	}
	if obs.MemLatency <= 0 || obs.MemRate <= 0 {
		t.Errorf("memory aggregates missing: %+v", obs)
	}
	if obs.UtilBus <= 0 || obs.UtilBus >= 1 {
		t.Errorf("UtilBus = %g", obs.UtilBus)
	}
}

// TestObservationMLPUnderOoO checks that the counter-derived MLP recovers
// the profile's memory-level parallelism when the OoO window is on.
func TestObservationMLPUnderOoO(t *testing.T) {
	cfg := Config{Mix: workload.MustGet("MEM1"), InstrBudget: 20_000_000, OoO: true}
	cap := &capturePolicy{n: 16}
	cfg.Policy = cap
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	profiles, _ := cfg.Mix.Profiles()
	obs := cap.decides[0]
	for i, p := range profiles {
		mlp := obs.Cores[i].Stats.MLP
		if rel := math.Abs(mlp-p.MLP) / p.MLP; rel > 0.25 {
			t.Errorf("core %d (%s): derived MLP %.2f vs profile %.2f", i, p.Name, mlp, p.MLP)
		}
	}
}

// TestEpochCadence verifies the control loop's shape: one Decide and one
// Observe per epoch, profiling windows of the configured length.
func TestEpochCadence(t *testing.T) {
	cfg := Config{Mix: workload.MustGet("ILP2"), InstrBudget: 20_000_000,
		ProfileLen: 250 * time.Microsecond}
	cap := &capturePolicy{n: 16}
	cfg.Policy = cap
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.decides) != res.Epochs || len(cap.observes) != res.Epochs {
		t.Errorf("decides %d, observes %d, epochs %d", len(cap.decides), len(cap.observes), res.Epochs)
	}
	for k, obs := range cap.decides {
		if math.Abs(obs.Window-250e-6) > 1e-9 {
			t.Errorf("epoch %d: profiling window %.3g, want 250 µs", k, obs.Window)
		}
	}
	// All epochs except the last (truncated at workload termination) span
	// the full 5 ms plus transition dead time.
	for k, obs := range cap.observes[:len(cap.observes)-1] {
		if obs.Window < 4.9e-3 || obs.Window > 5.3e-3 {
			t.Errorf("epoch %d: epoch window %.4g, want ≈5 ms", k, obs.Window)
		}
	}
}

// badPolicy returns out-of-range steps; the engine must clamp them.
type badPolicy struct{ n int }

func (p *badPolicy) Name() string { return "Bad" }
func (p *badPolicy) Decide(policy.Observation) policy.Decision {
	steps := make([]int, p.n)
	for i := range steps {
		steps[i] = 99
	}
	return policy.Decision{CoreSteps: steps, MemStep: -7}
}
func (p *badPolicy) Observe(policy.Observation) {}

func TestEngineClampsWildDecisions(t *testing.T) {
	cfg := Config{Mix: workload.MustGet("ILP2"), InstrBudget: 10_000_000, RecordTimeline: true}
	cfg.Policy = &badPolicy{n: 16}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Timeline {
		if rec.MemHz != 800e6 {
			t.Errorf("MemStep -7 not clamped to max: %g", rec.MemHz)
		}
		for _, hz := range rec.CoreHz {
			if hz < 2.2e9-1 {
				t.Errorf("core step 99 not clamped to ladder bottom: %g", hz)
			}
		}
	}
}

// stuckPolicy drives everything to minimum to test MaxEpochs enforcement
// with an absurdly small cap.
func TestMaxEpochsExceeded(t *testing.T) {
	cfg := Config{Mix: workload.MustGet("MEM1"), InstrBudget: 100_000_000, MaxEpochs: 2}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Error("MaxEpochs=2 run reported success")
	}
}

func TestPrefetchAndOoOCombine(t *testing.T) {
	cfg := Config{Mix: workload.MustGet("MEM2"), InstrBudget: 20_000_000, Prefetch: true, OoO: true}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(Config{Mix: workload.MustGet("MEM2"), InstrBudget: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime >= pres.WallTime {
		t.Errorf("prefetch+OoO (%.4fs) should beat plain in-order (%.4fs)", res.WallTime, pres.WallTime)
	}
}

func TestEnergyBreakdownConsistent(t *testing.T) {
	res := run(t, testConfig(t, "MID3"))
	e := res.Energy
	sum := e.CPU + e.L2 + e.Mem + e.Rest
	if math.Abs(sum-e.Total())/e.Total() > 1e-12 {
		t.Errorf("Total() %.6g != component sum %.6g", e.Total(), sum)
	}
	// The baseline split should sit near the calibrated 60/30/10.
	cpuFrac := (e.CPU + e.L2) / e.Total()
	if cpuFrac < 0.40 || cpuFrac > 0.75 {
		t.Errorf("baseline CPU fraction %.2f far from calibration", cpuFrac)
	}
}
