package sim

import (
	"testing"

	"coscale/internal/core"
	"coscale/internal/workload"
)

// TestStepZeroAllocSteadyState is the alloc-budget gate for the per-epoch hot
// path (DESIGN.md §7): once the engine's and controller's scratch buffers are
// warm, a full epoch step — profile, CoScale decide, sub-interval integration,
// end-of-epoch observe — must not allocate. The budget is exactly zero; any
// regression (a stray make, a closure capture, an interface box) fails here
// before it can slow figure regeneration down.
func TestStepZeroAllocSteadyState(t *testing.T) {
	// A budget far beyond what the test commits keeps every application
	// mid-run, so steps observe the steady state rather than termination.
	cfg := Config{Mix: workload.MustGet("MID1"), InstrBudget: 1 << 50}
	cfg.Policy = must(core.New(cfg.PolicyConfig()))
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epoch := 0
	step := func() { eng.step(epoch, false); epoch++ }
	// Warm-up: first epochs size scratch buffers and create the per-thread
	// slack trackers.
	for i := 0; i < 4; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Errorf("engine step allocates %.1f times per epoch in steady state, want 0", avg)
	}
}

// TestBaselineStepZeroAllocSteadyState covers the policy-less integration
// path (the branch the no-DVFS baseline takes every epoch).
func TestBaselineStepZeroAllocSteadyState(t *testing.T) {
	cfg := Config{Mix: workload.MustGet("MEM1"), InstrBudget: 1 << 50}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epoch := 0
	step := func() { eng.step(epoch, false); epoch++ }
	for i := 0; i < 4; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Errorf("baseline step allocates %.1f times per epoch in steady state, want 0", avg)
	}
}
