package sim

import (
	"testing"

	"coscale/internal/core"
	"coscale/internal/workload"
)

// TestMigrationKeepsBoundPerThread is the §3.3 context-switching claim:
// with threads migrating across cores every few epochs, per-thread slack
// bookkeeping must still hold every program's bound.
func TestMigrationKeepsBoundPerThread(t *testing.T) {
	baseCfg := Config{Mix: workload.MustGet("MID1"), InstrBudget: 40_000_000, MigrateEvery: 2}
	base := run(t, baseCfg)

	cfg := Config{Mix: workload.MustGet("MID1"), InstrBudget: 40_000_000, MigrateEvery: 2}
	cfg.Policy = must(core.New(cfg.PolicyConfig()))
	res := run(t, cfg)

	worst := maxOf(degradations(t, base, res))
	save := 1 - res.Energy.Total()/base.Energy.Total()
	t.Logf("with migration: savings %.1f%%, worst degradation %.2f%%", save*100, worst*100)
	if worst > 0.10+0.01 {
		t.Errorf("migration broke the bound: worst %.2f%%", worst*100)
	}
	if save < 0.05 {
		t.Errorf("migration destroyed savings: %.1f%%", save*100)
	}
}

// TestMigrationRotatesThreads verifies the observation exposes the rotated
// assignment and that per-thread results stay attributed to the right app.
func TestMigrationRotatesThreads(t *testing.T) {
	cfg := Config{Mix: workload.MustGet("MIX2"), InstrBudget: 30_000_000, MigrateEvery: 1}
	cap := &capturePolicy{n: 16}
	cfg.Policy = cap
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.decides) < 3 {
		t.Fatalf("too few epochs: %d", len(cap.decides))
	}
	// Epoch 0: identity. Epoch 1: rotated by one.
	if cap.decides[0].ThreadIDs[0] != 0 {
		t.Errorf("epoch 0 mapping not identity: %v", cap.decides[0].ThreadIDs[:4])
	}
	if cap.decides[1].ThreadIDs[0] != 15 || cap.decides[1].ThreadIDs[1] != 0 {
		t.Errorf("epoch 1 mapping not rotated: %v", cap.decides[1].ThreadIDs[:4])
	}
	// Per-thread app attribution is stable: thread 0 is milc's first copy.
	if res.Apps[0].App != "milc" {
		t.Errorf("thread 0 app = %s, want milc", res.Apps[0].App)
	}
	for _, a := range res.Apps {
		if a.FinishTime <= 0 {
			t.Errorf("thread %d (%s) never finished", a.Core, a.App)
		}
	}
}

// TestMigrationCostsTime: migrating every epoch must not be free.
func TestMigrationCostsTime(t *testing.T) {
	still := run(t, Config{Mix: workload.MustGet("ILP2"), InstrBudget: 30_000_000})
	moving := run(t, Config{Mix: workload.MustGet("ILP2"), InstrBudget: 30_000_000, MigrateEvery: 1})
	if moving.WallTime <= still.WallTime {
		t.Errorf("migration dead time missing: %.5f <= %.5f", moving.WallTime, still.WallTime)
	}
}
