package sim

import (
	"fmt"

	"coscale/internal/cache"
	"coscale/internal/cpu"
	"coscale/internal/dram"
	"coscale/internal/freq"
	"coscale/internal/workload"
)

// DetailedConfig drives the cycle-level backend: trace-driven cores over the
// set-associative L2 and the DDR3 simulator. It is used for
// cross-validation of the fast backend and for micro-studies; the figure
// sweeps run on the fast backend (see DESIGN.md §4).
type DetailedConfig struct {
	Mix       workload.Mix
	CoreHz    float64
	BusHz     float64
	L2Bytes   int
	OoO       bool
	Prefetch  bool
	Seed      uint64
	BusCycles int // simulation length in memory-bus cycles
}

// DetailedResult is the measured outcome of a detailed run.
type DetailedResult struct {
	PerCoreTPI    []float64 // seconds per instruction
	PerCoreMPKI   []float64
	AvgMemLatency float64 // seconds (reads)
	BusUtil       float64
	MemRate       float64 // requests per second
	MemEnergyJ    float64
	Seconds       float64
}

// RunDetailed executes the cycle-level system for cfg.BusCycles bus cycles.
func RunDetailed(cfg DetailedConfig) (*DetailedResult, error) {
	if cfg.Mix.Cores() == 0 {
		return nil, fmt.Errorf("sim: detailed config requires a mix")
	}
	if cfg.CoreHz <= 0 {
		cfg.CoreHz = 4 * freq.GHz
	}
	if cfg.BusHz <= 0 {
		cfg.BusHz = 800 * freq.MHz
	}
	if cfg.L2Bytes <= 0 {
		cfg.L2Bytes = cache.DefaultSizeMB << 20
	}
	if cfg.BusCycles <= 0 {
		cfg.BusCycles = 400_000
	}
	profiles, err := cfg.Mix.Profiles()
	if err != nil {
		return nil, err
	}

	dcfg := dram.DefaultConfig()
	dcfg.BusHz = cfg.BusHz
	mem, err := dram.New(dcfg)
	if err != nil {
		return nil, err
	}
	l2, err := cache.NewL2(cfg.L2Bytes, cache.DefaultWays, cache.DefaultBlockSize, cfg.Mix.Cores())
	if err != nil {
		return nil, err
	}
	cores := make([]*cpu.Core, cfg.Mix.Cores())
	for i, p := range profiles {
		cores[i] = cpu.NewCore(i, cfg.CoreHz, p, 100_000_000, cfg.Seed+1, cfg.OoO)
	}
	sys := cpu.NewSystem(cores, l2, mem)
	sys.Prefetch = cfg.Prefetch

	// Warm the cache for a fifth of the run, then reset statistics by
	// measuring deltas.
	warm := cfg.BusCycles / 5
	if err := sys.Run(warm); err != nil {
		return nil, err
	}
	warmStats := mem.Stats()
	type snap struct {
		instr  uint64
		cycles float64
		misses uint64
	}
	snaps := make([]snap, len(cores))
	for i, c := range cores {
		snaps[i] = snap{c.Instructions, c.Cycles, c.L2Misses}
	}
	warmJ, warmSecs := mem.Energy()

	if err := sys.Run(cfg.BusCycles); err != nil {
		return nil, err
	}

	stats := mem.Stats()
	res := &DetailedResult{
		PerCoreTPI:  make([]float64, len(cores)),
		PerCoreMPKI: make([]float64, len(cores)),
	}
	secs := float64(cfg.BusCycles) / cfg.BusHz
	res.Seconds = secs
	for i, c := range cores {
		dInstr := c.Instructions - snaps[i].instr
		dCyc := c.Cycles - snaps[i].cycles
		if dInstr > 0 {
			res.PerCoreTPI[i] = dCyc / float64(dInstr) / cfg.CoreHz
			res.PerCoreMPKI[i] = 1000 * float64(c.L2Misses-snaps[i].misses) / float64(dInstr)
		}
	}
	reads := stats.Reads - warmStats.Reads
	if reads > 0 {
		res.AvgMemLatency = float64(stats.LatencySum-warmStats.LatencySum) / float64(reads) / cfg.BusHz
	}
	res.BusUtil = float64(stats.BusBusy-warmStats.BusBusy) / float64(cfg.BusCycles) / float64(dcfg.Channels)
	res.MemRate = float64(stats.Reads+stats.Writes-warmStats.Reads-warmStats.Writes) / secs
	j, s := mem.Energy()
	res.MemEnergyJ = j - warmJ
	_ = warmSecs
	_ = s
	return res, nil
}
