package sim

import (
	"math"
	"testing"

	"coscale/internal/core"
	"coscale/internal/workload"
)

// TestWarmGoldenBitIdenticalAfterReset pins the warm-start determinism
// contract at the engine level (DESIGN.md §14): a warm-started controller's
// decision sequence is a pure function of trace + options, so replaying a
// run through Engine.Reset + CoScale.Reset on the SAME controller — whose
// snapshot table and phase signature Reset must clear — and running a
// completely fresh engine + controller must both reproduce every result
// bit for bit.
func TestWarmGoldenBitIdenticalAfterReset(t *testing.T) {
	type capture struct {
		epochs int
		wall   uint64
		cpu    uint64
		l2     uint64
		mem    uint64
		rest   uint64
		total  uint64
	}
	snap := func(r *Result) capture {
		return capture{
			epochs: r.Epochs,
			wall:   math.Float64bits(r.WallTime),
			cpu:    math.Float64bits(r.Energy.CPU),
			l2:     math.Float64bits(r.Energy.L2),
			mem:    math.Float64bits(r.Energy.Mem),
			rest:   math.Float64bits(r.Energy.Rest),
			total:  r.TotalInstructions,
		}
	}

	for _, mix := range []string{"MID1", "MEM1"} {
		t.Run(mix, func(t *testing.T) {
			cfg := Config{Mix: workload.MustGet(mix), InstrBudget: 16_000_000}
			cs := must(core.NewWithOptions(cfg.PolicyConfig(), core.Options{WarmStart: true}))
			cfg.Policy = cs

			eng := must(New(cfg))
			want := snap(must(eng.Run()))

			// Same engine, same controller: both Reset, nothing reallocated.
			eng.Reset()
			cs.Reset()
			replay := snap(must(eng.Run()))
			if replay != want {
				t.Errorf("replay after Reset diverged:\n got %+v\nwant %+v", replay, want)
			}

			// Fresh everything as the referee.
			cfg.Policy = must(core.NewWithOptions(cfg.PolicyConfig(), core.Options{WarmStart: true}))
			fresh := snap(must(must(New(cfg)).Run()))
			if fresh != want {
				t.Errorf("fresh engine diverged:\n got %+v\nwant %+v", fresh, want)
			}
		})
	}
}
