package sim

import (
	"testing"

	"coscale/internal/memsys"
	"coscale/internal/workload"
)

func TestDetailedRunBasics(t *testing.T) {
	res, err := RunDetailed(DetailedConfig{Mix: workload.MustGet("MID1"), BusCycles: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	for i, tpi := range res.PerCoreTPI {
		if tpi <= 0 {
			t.Errorf("core %d TPI = %g", i, tpi)
		}
	}
	if res.AvgMemLatency <= 0 || res.MemRate <= 0 || res.MemEnergyJ <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.BusUtil <= 0 || res.BusUtil > 1 {
		t.Errorf("BusUtil = %g", res.BusUtil)
	}
}

func TestDetailedRequiresMix(t *testing.T) {
	if _, err := RunDetailed(DetailedConfig{}); err == nil {
		t.Error("empty detailed config accepted")
	}
}

// TestAnalyticModelCalibration is the DESIGN.md §4 cross-validation: the
// fast backend's queueing model (internal/memsys) must predict the detailed
// DDR3 simulator's average latency within a factor-level tolerance across
// frequencies and load levels, and must rank operating points identically.
func TestAnalyticModelCalibration(t *testing.T) {
	params := memsys.DefaultParams()
	type point struct {
		busHz float64
		mix   string
	}
	points := []point{
		{800e6, "ILP1"},
		{800e6, "MID1"},
		{800e6, "MEM2"},
		{472e6, "MID1"},
		{206e6, "ILP1"},
	}
	var detLat, anaLat []float64
	for _, pt := range points {
		res, err := RunDetailed(DetailedConfig{
			Mix: workload.MustGet(pt.mix), BusHz: pt.busHz, BusCycles: 300_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		pred := params.Evaluate(pt.busHz, res.MemRate)
		detLat = append(detLat, res.AvgMemLatency)
		anaLat = append(anaLat, pred.Latency)
		ratio := pred.Latency / res.AvgMemLatency
		t.Logf("%s @%3.0f MHz: detailed %5.1f ns, analytic %5.1f ns (ratio %.2f), rate %.2e req/s",
			pt.mix, pt.busHz/1e6, res.AvgMemLatency*1e9, pred.Latency*1e9, ratio, res.MemRate)
		// The analytic model must land within 2.5x of the cycle-level
		// simulator (it omits refresh, tFAW and powerdown-exit effects).
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s @%.0f MHz: analytic/detailed latency ratio %.2f outside [0.4, 2.5]",
				pt.mix, pt.busHz/1e6, ratio)
		}
	}
	// Ranking consistency: ordering by latency must broadly agree —
	// check the extreme pair.
	minD, maxD, minA, maxA := 0, 0, 0, 0
	for i := range detLat {
		if detLat[i] < detLat[minD] {
			minD = i
		}
		if detLat[i] > detLat[maxD] {
			maxD = i
		}
		if anaLat[i] < anaLat[minA] {
			minA = i
		}
		if anaLat[i] > anaLat[maxA] {
			maxA = i
		}
	}
	if minD != minA || maxD != maxA {
		t.Errorf("latency ranking disagrees: detailed extremes (%d,%d), analytic (%d,%d)",
			minD, maxD, minA, maxA)
	}
}

// TestDetailedFrequencyScalingDirection checks the headline DVFS trade-off
// on the cycle-level substrate: lowering the bus frequency slows
// memory-bound mixes much more than compute-bound ones.
func TestDetailedFrequencyScalingDirection(t *testing.T) {
	slowdown := func(mix string) float64 {
		hi, err := RunDetailed(DetailedConfig{Mix: workload.MustGet(mix), BusHz: 800e6, BusCycles: 200_000})
		if err != nil {
			t.Fatal(err)
		}
		// Equal wall time: compare at equal cycles of the SLOW clock.
		lo, err := RunDetailed(DetailedConfig{Mix: workload.MustGet(mix), BusHz: 206e6, BusCycles: 60_000})
		if err != nil {
			t.Fatal(err)
		}
		return lo.PerCoreTPI[0] / hi.PerCoreTPI[0]
	}
	ilp, mem := slowdown("ILP2"), slowdown("MEM1")
	t.Logf("206 vs 800 MHz TPI ratio: ILP2 %.2f, MEM1 %.2f", ilp, mem)
	if mem < ilp {
		t.Errorf("memory scaling should hurt MEM1 (%.2f) more than ILP2 (%.2f)", mem, ilp)
	}
	if ilp > 1.35 {
		t.Errorf("ILP2 slowdown %.2f too large for a compute-bound mix", ilp)
	}
}
