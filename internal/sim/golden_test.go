package sim

import (
	"math"
	"testing"

	"coscale/internal/core"
	"coscale/internal/workload"
)

// The scratch-buffer refactor (DESIGN.md §7) must not change any simulation
// output. These golden values were captured from the pre-refactor engine
// (allocating per call) at InstrBudget 16M and are compared bit-for-bit:
// the reusable buffers, the memoizing trace.Sampler and Solver.SolveInto
// all promise results identical to their allocating predecessors.

type goldenApp struct {
	name   string
	instr  uint64
	finish uint64 // math.Float64bits of FinishTime
}

type goldenRun struct {
	mix     string
	coscale bool // false = no-DVFS baseline
	epochs  int
	wall    uint64
	cpu     uint64
	l2      uint64
	mem     uint64
	rest    uint64
	total   uint64 // TotalInstructions
	apps    []goldenApp
}

var goldenRuns = []goldenRun{
	{
		mix: "MID1", coscale: false, epochs: 2,
		wall: 0x3f7f09b4773de383,
		cpu:  0x3ff5b586197babf4, l2: 0x3fc1f5e7b0605a56,
		mem: 0x3fe795431af4547c, rest: 0x3fd41f7722a448d4,
		total: 274463580,
		apps: []goldenApp{
			{"ammp", 16000000, 0x3f7f09b4773de383},
			{"gap", 18230699, 0x3f7b3c4871fcd278},
			{"wupwise", 18309966, 0x3f7b1dfbcb374d34},
			{"vpr", 16075230, 0x3f7ee1e406b1f712},
		},
	},
	{
		mix: "MID1", coscale: true, epochs: 2,
		wall: 0x3f80de8640c3d2c9,
		cpu:  0x3ff45bafdf462b42, l2: 0x3fc37be0f747576b,
		mem: 0x3fe09d104f9c7715, rest: 0x3fd5dfafc9bd1075,
		total: 275573180,
		apps: []goldenApp{
			{"ammp", 15999999, 0x3f80de8640c3d2c9},
			{"gap", 18380587, 0x3f7d5dc8390af95a},
			{"wupwise", 18447037, 0x3f7d428b7318ef0e},
			{"vpr", 16065672, 0x3f80cbaa11f29521},
		},
	},
	{
		mix: "MEM1", coscale: true, epochs: 7,
		wall: 0x3fa1e2efe9abbc58,
		cpu:  0x4002c488e2eff470, l2: 0x3fe4ff225cb240e8,
		mem: 0x40103c2b2dbe47fb, rest: 0x3ff7315aed4959c3,
		total: 417605452,
		apps: []goldenApp{
			{"swim", 28171871, 0x3f941c97f4fc26a2},
			{"applu", 16000000, 0x3fa1e2efe9abbc58},
			{"galgel", 42287180, 0x3f8afbce6d4386a8},
			{"equake", 17942312, 0x3fa005c6439144d2},
		},
	},
}

func goldenConfig(t *testing.T, g goldenRun) Config {
	t.Helper()
	cfg := Config{Mix: workload.MustGet(g.mix), InstrBudget: 16_000_000}
	if g.coscale {
		cfg.Policy = must(core.New(cfg.PolicyConfig()))
	}
	return cfg
}

func checkGolden(t *testing.T, g goldenRun, res *Result) {
	t.Helper()
	if res.Epochs != g.epochs {
		t.Errorf("epochs = %d, want %d", res.Epochs, g.epochs)
	}
	checkBits := func(name string, got float64, want uint64) {
		t.Helper()
		if math.Float64bits(got) != want {
			t.Errorf("%s = %v (%#x), want bits %#x", name, got, math.Float64bits(got), want)
		}
	}
	checkBits("WallTime", res.WallTime, g.wall)
	checkBits("Energy.CPU", res.Energy.CPU, g.cpu)
	checkBits("Energy.L2", res.Energy.L2, g.l2)
	checkBits("Energy.Mem", res.Energy.Mem, g.mem)
	checkBits("Energy.Rest", res.Energy.Rest, g.rest)
	if res.TotalInstructions != g.total {
		t.Errorf("TotalInstructions = %d, want %d", res.TotalInstructions, g.total)
	}
	copies := len(res.Apps) / len(g.apps)
	for i, a := range res.Apps {
		want := g.apps[i/copies]
		if a.App != want.name {
			t.Errorf("app[%d] = %s, want %s", i, a.App, want.name)
			continue
		}
		if a.Instructions != want.instr {
			t.Errorf("app[%d] %s instructions = %d, want %d", i, a.App, a.Instructions, want.instr)
		}
		checkBits("app "+a.App+" finish", a.FinishTime, want.finish)
	}
}

// TestGoldenBitIdentical replays the captured runs on a fresh engine.
func TestGoldenBitIdentical(t *testing.T) {
	for _, g := range goldenRuns {
		name := g.mix + "/Baseline"
		if g.coscale {
			name = g.mix + "/CoScale"
		}
		t.Run(name, func(t *testing.T) {
			eng, err := New(goldenConfig(t, g))
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, g, res)
		})
	}
}

// TestGoldenBitIdenticalAfterReset replays each captured run twice on ONE
// engine via Reset (+ a fresh policy, since controllers carry state): the
// warmed scratch buffers must not perturb a single bit of the result.
func TestGoldenBitIdenticalAfterReset(t *testing.T) {
	for _, g := range goldenRuns {
		name := g.mix + "/Baseline"
		if g.coscale {
			name = g.mix + "/CoScale"
		}
		t.Run(name, func(t *testing.T) {
			cfg := goldenConfig(t, g)
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			eng.Reset()
			if g.coscale {
				eng.SetPolicy(must(core.New(cfg.PolicyConfig())))
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, g, res)
		})
	}
}
