// Package sim provides the epoch-driven full-system simulator: the OS-level
// control loop of §3 (profile 300 µs → select frequencies → run the 5 ms
// epoch → update slack) running over the synthetic application substrate.
//
// Ground truth comes from the joint performance solver evaluated on the
// *true* trace statistics (phase-exact, including mid-epoch phase changes
// via sub-interval integration), while controllers only ever see
// counter-derived observations from their profiling window — so the
// prediction error that drives the paper's dynamics (oscillation,
// over-correction, local minima) is faithfully present. See DESIGN.md §4.
package sim

import (
	"context"
	"fmt"
	"math"
	"time"

	"coscale/internal/cache"
	"coscale/internal/counters"
	"coscale/internal/fault"
	"coscale/internal/freq"
	"coscale/internal/memsys"
	"coscale/internal/perf"
	"coscale/internal/policy"
	"coscale/internal/power"
	"coscale/internal/trace"
	"coscale/internal/workload"
)

// Config configures one simulation run.
type Config struct {
	Mix    workload.Mix
	Policy policy.Policy // nil runs the no-DVFS baseline (max frequencies)

	CoreLadder *freq.Ladder
	MemLadder  *freq.Ladder
	Mem        memsys.Params
	Power      power.System
	LLCSizeMB  float64

	Gamma       float64       // performance bound (0.10 default)
	EpochLen    time.Duration // 5 ms default
	ProfileLen  time.Duration // 300 µs default
	InstrBudget uint64        // instructions per application (100M in the paper)

	Prefetch bool // enable the next-line prefetcher (Fig. 16)
	OoO      bool // 128-instruction MLP window (Fig. 17-18)

	SubSteps  int // ground-truth sub-intervals per epoch segment (default 4)
	MaxEpochs int // safety cap (default 4000)

	// MigrateEvery rotates the thread→core assignment every N epochs
	// (0 = threads stay pinned). Slack follows each software thread
	// (§3.3); controllers see the mapping via Observation.ThreadIDs.
	MigrateEvery int

	// Faults, when non-nil, injects the given deterministic fault scenario
	// at the substrate/controller boundary: counter readings handed to the
	// policy are perturbed and DVFS decisions pass through a faulty
	// actuation path. Ground truth (instructions, energy, wall time) is
	// never perturbed. nil runs fault-free with zero overhead.
	Faults *fault.Config

	RecordTimeline bool // keep per-epoch records (Fig. 7)

	// OnEpoch, when non-nil, receives one freshly allocated EpochRecord per
	// completed epoch while the run progresses — the hook behind
	// coscale-serve's NDJSON streaming. It runs synchronously on the
	// simulating goroutine, so a slow consumer slows the run but cannot
	// corrupt it, and it never alters results: records are derived from the
	// same state whether or not anyone is listening.
	OnEpoch func(EpochRecord)
}

// withDefaults fills zero fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.CoreLadder == nil {
		c.CoreLadder = freq.DefaultCoreLadder()
	}
	if c.MemLadder == nil {
		c.MemLadder = freq.DefaultMemLadder()
	}
	if c.Mem.Channels == 0 {
		c.Mem = memsys.DefaultParams()
	}
	if c.Power.Core.FNom <= 0 {
		c.Power = power.DefaultSystem(c.Mix.Cores())
	}
	if c.LLCSizeMB <= 0 {
		c.LLCSizeMB = cache.DefaultSizeMB
	}
	if c.Gamma <= 0 {
		c.Gamma = 0.10
	}
	if c.EpochLen == 0 {
		c.EpochLen = 5 * time.Millisecond
	}
	if c.ProfileLen == 0 {
		c.ProfileLen = 300 * time.Microsecond
	}
	if c.InstrBudget == 0 {
		c.InstrBudget = 100_000_000
	}
	if c.SubSteps == 0 {
		c.SubSteps = 4
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 4000
	}
	return c
}

// PolicyConfig derives the controller-facing configuration from a run
// configuration.
func (c Config) PolicyConfig() policy.Config {
	c = c.withDefaults()
	return policy.Config{
		NCores:     c.Mix.Cores(),
		CoreLadder: c.CoreLadder,
		MemLadder:  c.MemLadder,
		Mem:        c.Mem,
		Power:      c.Power,
		Gamma:      c.Gamma,
		EpochLen:   c.EpochLen,
		// Withhold a per-epoch guard band: a component proportional to
		// the bound (transition dead time and allowance-proportional
		// overspend, which shrink when the controller has less slack to
		// move frequencies with) plus a fixed floor covering
		// model/counter drift and end-of-run truncation, which do not
		// shrink with the bound. Actual transition time is still trued
		// up by the slack accounting after each epoch.
		Reserve: maxFloat(
			(c.Gamma/0.10)*(freq.DefaultCoreTransition.Seconds()+
				freq.MemTransitionTime(c.MemLadder.MinHz()).Seconds()+
				0.004*c.EpochLen.Seconds()),
			0.004*c.EpochLen.Seconds()),
	}
}

// EpochRecord captures one epoch for timeline plots (Fig. 7).
type EpochRecord struct {
	Index     int
	Wall      float64 // simulated seconds at epoch end
	CoreHz    []float64
	MemHz     float64
	Slowdowns []float64 // true per-core slowdown during the epoch vs all-max
	PowerW    float64   // average system power during the epoch
}

// AppResult is one core's outcome.
type AppResult struct {
	Core         int
	App          string
	Instructions uint64  // committed by termination
	FinishTime   float64 // seconds to commit the instruction budget
}

// Energy is the integrated energy breakdown in joules.
type Energy struct {
	CPU, L2, Mem, Rest float64
}

// Total returns total system energy.
func (e Energy) Total() float64 { return e.CPU + e.L2 + e.Mem + e.Rest }

// Result is a completed run.
type Result struct {
	Policy            string
	Mix               string
	Epochs            int
	WallTime          float64 // seconds until the slowest app finished its budget
	Apps              []AppResult
	Energy            Energy
	TotalInstructions uint64
	Timeline          []EpochRecord
}

// EnergyPerInstruction returns joules per committed instruction.
func (r *Result) EnergyPerInstruction() float64 {
	if r.TotalInstructions == 0 {
		return 0
	}
	return r.Energy.Total() / float64(r.TotalInstructions)
}

// Engine runs one configuration.
type Engine struct {
	cfg    Config
	solver *perf.Solver
	llc    *cache.ShareModel
	inj    *fault.Injector // nil when cfg.Faults is nil

	profiles []*trace.AppProfile

	// mutable state
	coreSteps []int
	memStep   int
	perm      []int     // core -> software thread currently scheduled on it
	instr     []float64 // instructions committed per thread
	reported  []float64 // instructions committed before workload termination, per thread
	finish    []float64 // wall time at budget crossing per thread (0 = not yet)
	wall      float64
	ctrs      *counters.System
	energy    Energy
	records   []EpochRecord

	// Steady-state scratch, sized once in New and reused every epoch so
	// the hot path (step and its callees) allocates nothing after warm-up
	// (DESIGN.md §7). Each buffer is fully written before it is read.
	samplers  []trace.Sampler // per software thread, memoizing phase lookups
	st        trueState
	weights   []float64
	fracs     []float64
	shares    []float64
	hz        []float64
	powerOps  []power.CoreOp
	ns        []float64
	dead      []float64
	solveRes  perf.Result
	snapEpoch counters.System
	snapProf  counters.System
	delta     counters.System
	obsDecide policy.Observation
	obsEpoch  policy.Observation
}

// New constructs an engine; the configuration is validated and defaulted.
// Validation errors match ErrInvalidConfig via errors.Is and carry the
// offending field in a *ConfigError.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validateRaw(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	profiles, err := cfg.Mix.Profiles()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	n := cfg.Mix.Cores()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	e := &Engine{
		cfg:       cfg,
		solver:    perf.NewSolver(cfg.Mem),
		llc:       cache.NewShareModel(cfg.LLCSizeMB),
		profiles:  profiles,
		perm:      perm,
		coreSteps: make([]int, n),
		instr:     make([]float64, n),
		reported:  make([]float64, n),
		finish:    make([]float64, n),
		ctrs:      counters.NewSystem(n, cfg.Mem.Channels),
	}
	e.samplers = make([]trace.Sampler, n)
	for th := range e.samplers {
		e.samplers[th].Reset(profiles[th])
	}
	e.st = trueState{
		stats:     make([]perf.CoreStats, n),
		mix:       make([]trace.InstrMix, n),
		l2PKI:     make([]float64, n),
		demandPKI: make([]float64, n),
		fillPKI:   make([]float64, n),
		wbPKI:     make([]float64, n),
	}
	e.weights = make([]float64, n)
	e.fracs = make([]float64, n)
	e.shares = make([]float64, n)
	e.hz = make([]float64, n)
	e.powerOps = make([]power.CoreOp, n)
	e.ns = make([]float64, n)
	e.dead = make([]float64, n)
	e.solveRes.TPI = make([]float64, n)
	e.solveRes.IPS = make([]float64, n)
	e.snapEpoch = *counters.NewSystem(n, cfg.Mem.Channels)
	e.snapProf = *counters.NewSystem(n, cfg.Mem.Channels)
	e.delta = *counters.NewSystem(n, cfg.Mem.Channels)
	for _, obs := range []*policy.Observation{&e.obsDecide, &e.obsEpoch} {
		obs.CoreSteps = make([]int, n)
		obs.ThreadIDs = make([]int, n)
		obs.Cores = make([]policy.CoreObs, n)
	}
	if cfg.Faults != nil {
		e.inj, err = fault.New(*cfg.Faults, n, cfg.Mem.Channels)
		if err != nil {
			return nil, &ConfigError{Field: "Faults", Reason: err.Error()}
		}
	}
	return e, nil
}

// FaultStats returns the injected-event counts since the last Reset; the
// zero value when the engine runs fault-free.
func (e *Engine) FaultStats() fault.Stats {
	if e.inj == nil {
		return fault.Stats{}
	}
	return e.inj.Stats()
}

// Reset rewinds the engine to its initial state so the same configuration can
// be re-run without reallocating; the scratch buffers warmed by a previous
// run are kept, and results after Reset are bit-identical to a fresh
// engine's. Policies carry their own state across runs — pair Reset with
// SetPolicy(freshPolicy) when re-running a controller-driven configuration.
func (e *Engine) Reset() {
	for i := range e.perm {
		e.perm[i] = i
		e.coreSteps[i] = 0
		e.instr[i] = 0
		e.reported[i] = 0
		e.finish[i] = 0
	}
	for th := range e.samplers {
		e.samplers[th].Reset(e.profiles[th])
	}
	e.memStep = 0
	e.wall = 0
	e.energy = Energy{}
	e.records = nil
	for i := range e.ctrs.Cores {
		e.ctrs.Cores[i] = counters.Core{}
	}
	for i := range e.ctrs.Channels {
		e.ctrs.Channels[i] = counters.Channel{}
	}
	if e.inj != nil {
		e.inj.Reset()
	}
}

// SetPolicy swaps the controller driving the engine. Valid only between
// runs (typically right after Reset); swapping mid-run is unsupported.
func (e *Engine) SetPolicy(p policy.Policy) { e.cfg.Policy = p }

// trueState is the ground-truth characterization of every core at an
// instant, plus derived per-core traffic components.
type trueState struct {
	stats     []perf.CoreStats
	mix       []trace.InstrMix
	l2PKI     []float64 // L2 accesses per kilo-instruction
	demandPKI []float64 // post-prefetch demand misses PKI
	fillPKI   []float64 // prefetch fills PKI
	wbPKI     []float64 // writebacks PKI
}

// trueStats samples every application's profile at its current position and
// applies the shared-LLC contention model, prefetcher and MLP settings. The
// returned state points at the engine's scratch buffers and is valid until
// the next trueStats call.
//
//hot:path
func (e *Engine) trueStats() *trueState {
	n := len(e.profiles)
	st := &e.st
	for i := 0; i < n; i++ {
		th := e.perm[i]
		frac := e.instr[th] / float64(e.cfg.InstrBudget)
		frac -= math.Floor(frac) // finished apps keep running, wrapped
		e.fracs[i] = frac
		e.weights[i] = e.samplers[th].At(frac).L2APKI
	}
	e.llc.SharesInto(e.shares, e.weights)
	for i := 0; i < n; i++ {
		th := e.perm[i]
		p := e.profiles[th]
		s := e.samplers[th].At(e.fracs[i])
		mpki := e.samplers[th].MPKI(e.fracs[i], e.shares[i])
		demand, fills := mpki, 0.0
		if e.cfg.Prefetch && p.PrefetchAccuracy > 0 {
			demand = mpki * (1 - p.PrefetchCoverage)
			fills = mpki * p.PrefetchCoverage / p.PrefetchAccuracy
		}
		mlp := 1.0
		if e.cfg.OoO {
			mlp = s.MLP
		}
		wb := mpki * s.DirtyFrac
		st.stats[i] = perf.CoreStats{
			CPIBase:     s.CPIBase,
			Alpha:       s.L2APKI / 1000,
			StallL2:     cache.DefaultHitTime,
			Beta:        demand / 1000,
			MemPerInstr: (demand + fills + wb) / 1000,
			MLP:         mlp,
		}
		st.mix[i] = s.Mix
		st.l2PKI[i] = s.L2APKI
		st.demandPKI[i] = demand
		st.fillPKI[i] = fills
		st.wbPKI[i] = wb
	}
	return st
}

// coreHz fills the engine's frequency scratch from the current ladder steps.
// The returned slice is valid until the next coreHz call.
//
//hot:path
func (e *Engine) coreHz() []float64 {
	e.hz = perf.ResizeFloats(e.hz, len(e.coreSteps))
	for i, s := range e.coreSteps {
		e.hz[i] = e.cfg.CoreLadder.Hz(s)
	}
	return e.hz
}

// advance integrates dt seconds of execution at the current settings,
// accumulating instructions, counters and energy, and recording budget
// crossings. dead[i] (optional) removes transition dead time from core i's
// execution within this interval.
//
//hot:path
func (e *Engine) advance(dt float64, st *trueState, dead []float64) {
	if dt <= 0 {
		return
	}
	hz := e.coreHz()
	busHz := e.cfg.MemLadder.Hz(e.memStep)
	e.solver.SolveInto(&e.solveRes, st.stats, hz, busHz)
	res := &e.solveRes

	var reads, writes, l2Rate float64
	cores := resizeCoreOps(e.powerOps, len(hz))
	e.powerOps = cores
	ns := perf.ResizeFloats(e.ns, len(hz))
	e.ns = ns
	for i := range hz {
		exec := dt
		if dead != nil && dead[i] > 0 {
			exec -= dead[i]
			if exec < 0 {
				exec = 0
			}
		}
		n := 0.0
		if res.TPI[i] > 0 && !math.IsInf(res.TPI[i], 0) {
			n = exec / res.TPI[i]
		}
		// Budget crossing: interpolate the finish instant (tracked per
		// software thread — threads may migrate across cores).
		th := e.perm[i]
		budget := float64(e.cfg.InstrBudget)
		if e.finish[th] <= 0 && e.instr[th] < budget && e.instr[th]+n >= budget {
			e.finish[th] = e.wall + (budget-e.instr[th])*res.TPI[i]
		}
		e.instr[th] += n
		ns[i] = n

		c := &e.ctrs.Cores[i]
		stats := st.stats[i]
		c.Cycles += uint64(dt * hz[i])
		c.TIC += uint64(n)
		c.TMS += uint64(n * stats.Alpha)
		c.TLA += uint64(n * st.l2PKI[i] / 1000)
		c.TLM += uint64(n * st.demandPKI[i] / 1000)
		c.TLS += uint64(n * stats.Beta)
		c.StallCyclesL2 += uint64(n * stats.Alpha * stats.StallL2 * hz[i])
		c.StallCyclesMem += uint64(n * stats.Beta * res.Mem.Latency / stats.MLP * hz[i])
		c.L2Writebacks += uint64(n * st.wbPKI[i] / 1000)
		c.PrefetchFills += uint64(n * st.fillPKI[i] / 1000)
		mix := st.mix[i]
		c.ALUOps += uint64(n * mix.ALU)
		c.FPUOps += uint64(n * mix.FPU)
		c.Branches += uint64(n * mix.Branch)
		c.LoadStores += uint64(n * mix.LoadStore)

		ips := 0.0
		if exec > 0 {
			ips = n / dt // averaged over the full interval incl. dead time
		}
		reads += ips * (st.demandPKI[i] + st.fillPKI[i]) / 1000
		writes += ips * st.wbPKI[i] / 1000
		l2Rate += ips * st.l2PKI[i] / 1000
		cores[i] = power.CoreOp{
			Volts: e.cfg.CoreLadder.Volts(e.coreSteps[i]),
			Hz:    hz[i],
			IPS:   ips,
			Mix:   mix,
		}
	}

	// Channel counters, spread evenly (bank-interleaved address map).
	totalReqs := (reads + writes) * dt
	busCycles := dt * busHz
	busyFrac := e.busyFrac(res.Mem)
	nchan := float64(e.cfg.Mem.Channels)
	for ci := range e.ctrs.Channels {
		ch := &e.ctrs.Channels[ci]
		ch.BusCycles += uint64(busCycles)
		ch.Reads += uint64((reads * dt) / nchan)
		ch.Writes += uint64((writes * dt) / nchan)
		ch.Prefetches += 0
		ch.BusBusyCycles += uint64(busCycles * res.Mem.UtilBus)
		ch.LatencyCycles += uint64(totalReqs / nchan * res.Mem.Latency * busHz)
		ch.ReadQueueOccupancy += uint64(busCycles * (res.Mem.XiBus - 1))
		ch.BankOccupancy += uint64(busCycles * res.Mem.XiBank)
		ch.RowMisses += uint64((reads + writes) * dt / nchan) // closed page: every access opens a row
		ch.PageOpens += uint64((reads + writes) * dt / nchan)
		ch.PageCloses += uint64((reads + writes) * dt / nchan)
		ch.ActiveCycles += uint64(busCycles * busyFrac)
		ch.IdleCycles += uint64(busCycles * (1 - busyFrac))
	}

	// Energy.
	u := power.MemUsage{
		BusHz:     busHz,
		MCVolts:   e.cfg.MemLadder.Volts(e.memStep),
		ReadRate:  reads,
		WriteRate: writes,
		ActRate:   reads + writes,
		UtilBus:   res.Mem.UtilBus,
		BusyFrac:  busyFrac,
	}
	// Energy integrates only until workload termination (the instant the
	// slowest application commits its budget); any overhang within this
	// chunk is excluded, matching the paper's measurement methodology.
	eDt := dt
	if e.allFinished() {
		last := 0.0
		for _, f := range e.finish {
			if f > last {
				last = f
			}
		}
		if over := (e.wall + dt) - last; over > 0 {
			eDt = dt - over
			if eDt < 0 {
				eDt = 0
			}
		}
	}
	// Reported (measured-window) instructions truncate at the same
	// instant as energy, keeping energy-per-instruction consistent.
	for i, n := range ns {
		e.reported[e.perm[i]] += n * eDt / dt
	}
	split := e.cfg.Power.Total(cores, l2Rate, u)
	e.energy.CPU += split.CPU * eDt
	e.energy.L2 += split.L2 * eDt
	e.energy.Mem += split.Mem * eDt
	e.energy.Rest += split.Rest * eDt

	e.wall += dt
}

// busyFrac estimates the fraction of time DRAM ranks are kept out of
// powerdown: roughly the probability at least one bank in a rank is serving
// a request, approximated from bank utilization with an idle-timeout factor.
func (e *Engine) busyFrac(l memsys.Load) float64 {
	b := l.UtilBank * 8 * 1.5 // 8 banks per rank; 1.5x for the powerdown entry delay
	if b > 1 {
		return 1
	}
	return b
}

// observationInto converts counter deltas over a window at known settings
// into the controller-facing Observation, reusing obs's slices. The result
// is valid until the engine's next observationInto call on the same obs.
//
//hot:path
func (e *Engine) observationInto(obs *policy.Observation, delta *counters.System, window float64) {
	obs.Window = window
	obs.CoreSteps = perf.ResizeInts(obs.CoreSteps, len(e.coreSteps))
	copy(obs.CoreSteps, e.coreSteps)
	obs.MemStep = e.memStep
	obs.ThreadIDs = perf.ResizeInts(obs.ThreadIDs, len(e.perm))
	copy(obs.ThreadIDs, e.perm)
	obs.Cores = resizeCoreObs(obs.Cores, len(delta.Cores))
	obs.MemRate = 0
	obs.MemLatency = 0
	obs.UtilBus = 0
	obs.BusyFrac = 0
	busHz := e.cfg.MemLadder.Hz(e.memStep)
	var reads, writes, latencyCycles, busCycles, busBusy, active uint64
	for _, ch := range delta.Channels {
		reads += ch.Reads
		writes += ch.Writes
		latencyCycles += ch.LatencyCycles
		busCycles += ch.BusCycles
		busBusy += ch.BusBusyCycles
		active += ch.ActiveCycles
	}
	if window > 0 {
		obs.MemRate = float64(reads+writes) / window
	}
	if reads+writes > 0 && busHz > 0 {
		obs.MemLatency = float64(latencyCycles) / busHz / float64(reads+writes)
	}
	if busCycles > 0 {
		obs.UtilBus = float64(busBusy) / float64(busCycles)
		obs.BusyFrac = float64(active) / float64(busCycles)
	}

	for i := range delta.Cores {
		c := delta.Cores[i]
		hz := e.cfg.CoreLadder.Hz(e.coreSteps[i])
		co := policy.CoreObs{Instructions: c.TIC}
		if c.TIC > 0 {
			tic := float64(c.TIC)
			stallL2Cyc := float64(c.StallCyclesL2)
			stallMemCyc := float64(c.StallCyclesMem)
			cpuCycles := float64(c.Cycles) - stallL2Cyc - stallMemCyc
			if cpuCycles < 0 {
				cpuCycles = 0
			}
			co.Stats.CPIBase = cpuCycles / tic
			co.Stats.Alpha = float64(c.TMS) / tic
			if c.TMS > 0 {
				co.Stats.StallL2 = stallL2Cyc / hz / float64(c.TMS)
			}
			co.Stats.Beta = float64(c.TLS) / tic
			co.Stats.MemPerInstr = float64(c.TLM+c.PrefetchFills+c.L2Writebacks) / tic
			co.Stats.MLP = 1
			if c.TLS > 0 && obs.MemLatency > 0 {
				stallPerMiss := stallMemCyc / hz / float64(c.TLS)
				if stallPerMiss > 0 {
					mlp := obs.MemLatency / stallPerMiss
					if mlp < 1 {
						mlp = 1
					}
					co.Stats.MLP = mlp
				}
			}
			co.L2PerInstr = float64(c.TLA) / tic
			total := float64(c.ALUOps + c.FPUOps + c.Branches + c.LoadStores)
			if total > 0 {
				co.Mix = trace.InstrMix{
					ALU:       float64(c.ALUOps) / tic,
					FPU:       float64(c.FPUOps) / tic,
					Branch:    float64(c.Branches) / tic,
					LoadStore: float64(c.LoadStores) / tic,
				}
			}
			if window > 0 {
				co.IPS = tic / window
			}
		} else {
			co.Stats = perf.CoreStats{CPIBase: 1, MLP: 1}
		}
		obs.Cores[i] = co
	}
}

// oracleObservationInto builds a perfect observation of the upcoming epoch
// from the true state (for the Offline policy), reusing obs's slices.
//
//hot:path
func (e *Engine) oracleObservationInto(obs *policy.Observation, st *trueState) {
	hz := e.coreHz()
	busHz := e.cfg.MemLadder.Hz(e.memStep)
	e.solver.SolveInto(&e.solveRes, st.stats, hz, busHz)
	res := &e.solveRes
	obs.Window = e.cfg.EpochLen.Seconds()
	obs.CoreSteps = perf.ResizeInts(obs.CoreSteps, len(e.coreSteps))
	copy(obs.CoreSteps, e.coreSteps)
	obs.MemStep = e.memStep
	obs.ThreadIDs = perf.ResizeInts(obs.ThreadIDs, len(e.perm))
	copy(obs.ThreadIDs, e.perm)
	obs.Cores = resizeCoreObs(obs.Cores, len(st.stats))
	obs.MemRate = res.MemRate
	obs.MemLatency = res.Mem.Latency
	obs.UtilBus = res.Mem.UtilBus
	obs.BusyFrac = e.busyFrac(res.Mem)
	for i := range st.stats {
		ips := 0.0
		if res.TPI[i] > 0 {
			ips = 1 / res.TPI[i]
		}
		obs.Cores[i] = policy.CoreObs{
			Instructions: uint64(ips * e.cfg.EpochLen.Seconds()),
			Stats:        st.stats[i],
			L2PerInstr:   st.l2PKI[i] / 1000,
			Mix:          st.mix[i],
			IPS:          ips,
		}
	}
}

// Run executes the workload until every application has committed its
// instruction budget (or MaxEpochs elapse). It is RunContext with a
// background context.
func (e *Engine) Run() (*Result, error) { return e.RunContext(context.Background()) }

// RunContext is Run with cancellation: the context is checked once per
// epoch, so a long simulation stops within one epoch of ctx being done and
// returns an error wrapping ctx.Err(). A cancelled run leaves the engine in
// a partial state; call Reset before reusing it.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	cfg := e.cfg
	polName := "Baseline"
	var oracle bool
	if cfg.Policy != nil {
		polName = cfg.Policy.Name()
		if op, ok := cfg.Policy.(policy.OraclePolicy); ok {
			oracle = op.WantsOracle()
		}
	}

	epochs := 0
	for ; epochs < cfg.MaxEpochs && !e.allFinished(); epochs++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: %s/%s interrupted after %d epochs: %w", cfg.Mix.Name, polName, epochs, err)
		}
		e.step(epochs, oracle)
	}
	if !e.allFinished() {
		return nil, fmt.Errorf("sim: %s/%s did not finish within %d epochs", cfg.Mix.Name, polName, cfg.MaxEpochs)
	}

	res := &Result{
		Policy:   polName,
		Mix:      cfg.Mix.Name,
		Epochs:   epochs,
		Energy:   e.energy,
		Timeline: e.records,
	}
	var total uint64
	for i := range e.profiles {
		res.Apps = append(res.Apps, AppResult{
			Core:         i,
			App:          e.profiles[i].Name,
			Instructions: uint64(e.reported[i]),
			FinishTime:   e.finish[i],
		})
		total += uint64(e.reported[i])
		if e.finish[i] > res.WallTime {
			res.WallTime = e.finish[i]
		}
	}
	res.TotalInstructions = total
	return res, nil
}

// step runs one epoch of the control loop: profile, decide, integrate,
// observe. It is the per-epoch hot path and must stay allocation-free in
// steady state when timelines are off (asserted by the alloc-budget tests).
//
//hot:path
func (e *Engine) step(epoch int, oracle bool) {
	cfg := &e.cfg
	epochSecs := cfg.EpochLen.Seconds()
	profSecs := cfg.ProfileLen.Seconds()
	n := len(e.perm)

	e.ctrs.SnapshotInto(&e.snapEpoch)
	epochWallStart := e.wall
	epochEnergyStart := e.energy.Total()

	// OS thread migration at quantum boundaries (§3.3): rotate the
	// thread→core assignment; slack follows each thread through the
	// policies' thread-keyed SlackBook.
	var migrateDead float64
	if cfg.MigrateEvery > 0 && epoch > 0 && epoch%cfg.MigrateEvery == 0 {
		last := e.perm[n-1]
		copy(e.perm[1:], e.perm[:n-1])
		e.perm[0] = last
		migrateDead = contextSwitchCost
	}

	var dead []float64
	if cfg.Policy == nil {
		// Baseline: run the whole epoch at maximum frequencies.
		if migrateDead > 0 {
			dead = e.resetDead(n)
			for i := range dead {
				dead[i] = migrateDead
			}
		}
		e.integrate(epochSecs, dead)
	} else {
		// Profiling phase at the settings carried over.
		e.ctrs.SnapshotInto(&e.snapProf)
		st := e.trueStats()
		e.advance(profSecs, st, nil)
		e.ctrs.SubInto(&e.delta, &e.snapProf)

		if oracle {
			e.oracleObservationInto(&e.obsDecide, st)
		} else {
			if e.inj != nil {
				e.inj.PerturbCounters(fault.ProfileWindow, &e.delta)
			}
			e.observationInto(&e.obsDecide, &e.delta, profSecs)
		}
		d := cfg.Policy.Decide(e.obsDecide)
		if e.inj != nil {
			cs, ms := e.inj.Actuate(d.CoreSteps, d.MemStep, e.coreSteps, e.memStep)
			d = policy.Decision{CoreSteps: cs, MemStep: ms}
		}
		dead = e.applyDecision(d, n)
		if migrateDead > 0 {
			if dead == nil {
				dead = e.resetDead(n)
			}
			for i := range dead {
				dead[i] += migrateDead
			}
		}
		e.integrate(epochSecs-profSecs, dead)
	}

	e.ctrs.SubInto(&e.delta, &e.snapEpoch)
	epochWindow := e.wall - epochWallStart
	if cfg.Policy != nil {
		if e.inj != nil {
			e.inj.PerturbCounters(fault.EpochWindow, &e.delta)
		}
		e.observationInto(&e.obsEpoch, &e.delta, epochWindow)
		cfg.Policy.Observe(e.obsEpoch)
	}

	if cfg.RecordTimeline || cfg.OnEpoch != nil {
		rec := e.epochRecord(epoch, epochWindow, e.energy.Total()-epochEnergyStart)
		if cfg.RecordTimeline {
			e.records = append(e.records, rec)
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(rec)
		}
	}
}

// integrate advances a segment in SubSteps chunks, re-sampling true state
// each chunk so mid-epoch phase changes show up in ground truth.
//
//hot:path
func (e *Engine) integrate(secs float64, dead []float64) {
	steps := e.cfg.SubSteps
	chunk := secs / float64(steps)
	for k := 0; k < steps; k++ {
		st := e.trueStats()
		if k == 0 {
			e.advance(chunk, st, dead)
		} else {
			e.advance(chunk, st, nil)
		}
		if e.allFinished() {
			return // workload terminated; the rest of the epoch is unmeasured
		}
	}
}

// resetDead returns the engine's zeroed dead-time scratch at length n.
//
//hot:path
func (e *Engine) resetDead(n int) []float64 {
	e.dead = perf.ResizeFloats(e.dead, n)
	return e.dead
}

// applyDecision installs new settings and returns per-core transition dead
// time for the first sub-interval (nil when nothing changed). The returned
// slice is the engine's scratch, valid until the next applyDecision.
//
//hot:path
func (e *Engine) applyDecision(d policy.Decision, n int) []float64 {
	dead := e.resetDead(n)
	anyDead := false
	for i := 0; i < n && i < len(d.CoreSteps); i++ {
		step := e.cfg.CoreLadder.Clamp(d.CoreSteps[i])
		if step != e.coreSteps[i] {
			dead[i] += freq.DefaultCoreTransition.Seconds()
			anyDead = true
			e.coreSteps[i] = step
		}
	}
	memStep := e.cfg.MemLadder.Clamp(d.MemStep)
	if memStep != e.memStep {
		e.memStep = memStep
		// A bus re-lock stalls all memory accesses; approximate by
		// charging every core the transition time.
		t := freq.MemTransitionTime(e.cfg.MemLadder.Hz(memStep)).Seconds()
		for i := range dead {
			dead[i] += t
		}
		anyDead = true
	}
	if !anyDead {
		return nil
	}
	return dead
}

// epochRecord builds a freshly allocated record of the just-completed epoch
// for the timeline (Fig. 7) and the OnEpoch streaming hook.
func (e *Engine) epochRecord(idx int, window float64, energyDelta float64) EpochRecord {
	st := e.trueStats()
	hz := e.coreHz()
	res := e.solver.Solve(st.stats, hz, e.cfg.MemLadder.Hz(e.memStep))
	maxRes := e.solver.SolveUniform(st.stats, e.cfg.CoreLadder.MaxHz(), e.cfg.MemLadder.MaxHz())
	rec := EpochRecord{
		Index: idx,
		Wall:  e.wall,
		// hz is the engine's scratch; the record keeps its own copy.
		CoreHz: append([]float64(nil), hz...),
		MemHz:  e.cfg.MemLadder.Hz(e.memStep),
		//hot:alloc-ok result escapes: the per-epoch record owns its slices
		Slowdowns: make([]float64, len(hz)),
	}
	for i := range hz {
		if maxRes.TPI[i] > 0 {
			rec.Slowdowns[i] = res.TPI[i] / maxRes.TPI[i]
		}
	}
	if window > 0 {
		rec.PowerW = energyDelta / window
	}
	return rec
}

// resizeCoreOps and resizeCoreObs reuse scratch backing arrays without
// zeroing: every element is fully overwritten before it is read.
func resizeCoreOps(s []power.CoreOp, n int) []power.CoreOp {
	if cap(s) < n {
		return make([]power.CoreOp, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	return s[:n]
}

func resizeCoreObs(s []policy.CoreObs, n int) []policy.CoreObs {
	if cap(s) < n {
		return make([]policy.CoreObs, n) //hot:alloc-ok capacity miss: grow-only scratch, amortized to zero in steady state
	}
	return s[:n]
}

// contextSwitchCost is the per-core dead time charged when the OS migrates
// threads at a quantum boundary (cold caches and scheduler overhead folded
// into one constant).
const contextSwitchCost = 10e-6

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (e *Engine) allFinished() bool {
	for _, f := range e.finish {
		if f <= 0 {
			return false
		}
	}
	return true
}
