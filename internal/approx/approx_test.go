package approx

import (
	"math"
	"testing"
)

func TestEqual(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{"identical", 1.5, 1.5, 0, true},
		{"within relative tol", 1e12, 1e12 * (1 + 1e-10), 0, true},
		{"outside relative tol", 1e12, 1e12 * (1 + 1e-8), 0, false},
		{"small magnitudes absolute", 1e-15, -1e-15, 0, true},
		{"distinct small values", 1e-3, 2e-3, 0, false},
		{"explicit loose tol", 1.0, 1.01, 0.05, true},
		{"explicit tight tol", 1.0, 1.01, 1e-6, false},
		{"both +inf", math.Inf(1), math.Inf(1), 0, true},
		{"both -inf", math.Inf(-1), math.Inf(-1), 0, true},
		{"opposite inf", math.Inf(1), math.Inf(-1), 0, false},
		{"inf vs finite", math.Inf(1), 1e308, 0, false},
		{"nan vs nan", math.NaN(), math.NaN(), 0, false},
		{"nan vs zero", math.NaN(), 0, 0, false},
		{"zero vs zero", 0, 0, 0, true},
		{"signed zero", 0, math.Copysign(0, -1), 0, true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: Equal(%v, %v, %v) = %v, want %v", c.name, c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestEqualSymmetric(t *testing.T) {
	t.Parallel()
	pairs := [][2]float64{{1, 1 + 1e-10}, {1e9, 1e9 + 1}, {-3, -3.0000000001}, {0, 1e-12}}
	for _, p := range pairs {
		if Equal(p[0], p[1], 0) != Equal(p[1], p[0], 0) {
			t.Errorf("Equal not symmetric for %v", p)
		}
	}
}

func TestClose(t *testing.T) {
	t.Parallel()
	if !Close(2.0, 2.0+1e-12) {
		t.Error("Close rejected values within DefaultTol")
	}
	if Close(2.0, 2.0001) {
		t.Error("Close accepted values far outside DefaultTol")
	}
}

func TestZero(t *testing.T) {
	t.Parallel()
	if !Zero(0, 0) || !Zero(1e-12, 0) || !Zero(-1e-12, 0) {
		t.Error("Zero rejected effectively-zero values")
	}
	if Zero(1e-6, 0) {
		t.Error("Zero accepted 1e-6 at DefaultTol")
	}
	if !Zero(0.5, 0.6) {
		t.Error("Zero ignored explicit tolerance")
	}
	if Zero(math.NaN(), 0) {
		t.Error("Zero accepted NaN")
	}
}

func TestLess(t *testing.T) {
	t.Parallel()
	if !Less(1.0, 2.0, 0) {
		t.Error("Less rejected clearly smaller value")
	}
	if Less(2.0, 1.0, 0) {
		t.Error("Less accepted larger value")
	}
	if Less(1.0, 1.0+1e-12, 0) {
		t.Error("Less treated a within-tolerance tie as smaller")
	}
	if !Less(1.0, 1.0+1e-3, 1e-6) {
		t.Error("Less rejected difference above explicit tolerance")
	}
}
