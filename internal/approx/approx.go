// Package approx provides tolerance-based floating-point comparison for the
// simulator's energy, time and frequency arithmetic.
//
// CoScale's greedy search (PAPER.md §"Coordinating CPU and memory DVFS")
// discriminates between full-system energy estimates that differ by
// fractions of a percent, and the fixed-point performance solver iterates to
// a 1e-9 relative tolerance. Exact ==/!= on such values is forbidden
// repo-wide by the floateq lint rule; comparisons go through this package
// instead, so every "equal enough" decision shares one definition of
// "enough".
package approx

import "math"

// DefaultTol is the default relative tolerance: 1e-9 matches the perf
// solver's convergence tolerance and sits three orders of magnitude below
// the smallest energy differences the CoScale search must distinguish,
// while absorbing accumulated double-precision rounding.
const DefaultTol = 1e-9

// Equal reports whether a and b agree to within tol, measured relative to
// the larger magnitude and absolutely for magnitudes below 1:
//
//	|a-b| <= tol * max(1, |a|, |b|)
//
// Infinities of the same sign are equal; NaN equals nothing (including
// itself). A non-positive tol falls back to DefaultTol.
func Equal(a, b, tol float64) bool {
	if tol <= 0 {
		tol = DefaultTol
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.IsInf(a, 1) && math.IsInf(b, 1) ||
			math.IsInf(a, -1) && math.IsInf(b, -1)
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}

// Close is Equal at DefaultTol.
func Close(a, b float64) bool { return Equal(a, b, DefaultTol) }

// Zero reports |x| <= tol (absolute; a non-positive tol falls back to
// DefaultTol). Use it for "is this rate/steepness/fraction effectively
// zero" tests on computed values.
func Zero(x, tol float64) bool {
	if tol <= 0 {
		tol = DefaultTol
	}
	return math.Abs(x) <= tol
}

// Less reports whether a is smaller than b by more than tol on the Equal
// scale — i.e. a < b and not Equal(a, b, tol). Greedy-search comparisons
// use it so that ties within tolerance do not flip on rounding noise.
func Less(a, b, tol float64) bool {
	return a < b && !Equal(a, b, tol)
}
