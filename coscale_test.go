package coscale

import (
	"testing"
	"time"
)

func TestWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 16 {
		t.Fatalf("Workloads() returned %d names", len(ws))
	}
	if ws[0] != "MEM1" {
		t.Errorf("first workload = %s, want MEM1 (paper presentation order)", ws[0])
	}
}

func TestRunRequiresWorkload(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("Run with empty config succeeded")
	}
	if _, err := Run(Config{Workload: "NOPE"}); err == nil {
		t.Error("Run with unknown workload succeeded")
	}
}

func TestRunBaseline(t *testing.T) {
	res, err := Run(Config{Workload: "ILP2", Policy: PolicyBaseline, InstructionBudget: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "Baseline" || res.WallTime <= 0 || res.Energy.Total() <= 0 {
		t.Errorf("degenerate baseline result: %+v", res)
	}
}

func TestCompareCoScale(t *testing.T) {
	cmp, err := Compare(Config{Workload: "MID3", InstructionBudget: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FullSavings() <= 0 {
		t.Errorf("CoScale saved nothing: %.3f", cmp.FullSavings())
	}
	if cmp.WorstDegradation() > 0.10 {
		t.Errorf("bound violated: %.3f", cmp.WorstDegradation())
	}
	if cmp.Run.Policy != "CoScale" {
		t.Errorf("default policy = %s", cmp.Run.Policy)
	}
}

func TestConfigKnobs(t *testing.T) {
	res, err := Run(Config{
		Workload:           "ILP2",
		Policy:             PolicyCoScale,
		PerformanceBound:   0.05,
		EpochLength:        4 * time.Millisecond,
		ProfileLength:      200 * time.Microsecond,
		InstructionBudget:  20_000_000,
		CoreFrequencySteps: 7,
		MemFrequencySteps:  7,
		Prefetch:           true,
		RecordTimeline:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Error("timeline not recorded")
	}
}

func TestHalfVoltageConflicts(t *testing.T) {
	_, err := Run(Config{Workload: "ILP2", HalfVoltageRange: true, CoreFrequencySteps: 4,
		InstructionBudget: 20_000_000})
	if err == nil {
		t.Error("conflicting ladder options accepted")
	}
}

func TestPowerCapThroughPublicAPI(t *testing.T) {
	if _, err := Run(Config{Workload: "MID3", Policy: PolicyPowerCap, InstructionBudget: 15_000_000}); err == nil {
		t.Error("PowerCap without a budget accepted")
	}
	base, err := Run(Config{Workload: "MID3", Policy: PolicyBaseline, InstructionBudget: 15_000_000})
	if err != nil {
		t.Fatal(err)
	}
	basePower := base.Energy.Total() / base.WallTime
	capW := basePower * 0.75
	res, err := Run(Config{Workload: "MID3", Policy: PolicyPowerCap, PowerCapWatts: capW,
		InstructionBudget: 15_000_000})
	if err != nil {
		t.Fatal(err)
	}
	avgPower := res.Energy.Total() / res.WallTime
	if avgPower > capW*1.05 {
		t.Errorf("average power %.0f W exceeds cap %.0f W", avgPower, capW)
	}
	if res.WallTime <= base.WallTime {
		t.Error("capped run should be slower than uncapped baseline")
	}
}

func TestAllPoliciesRun(t *testing.T) {
	for _, p := range []string{PolicyBaseline, PolicyCoScale, PolicyMemScale, PolicyCPUOnly,
		PolicyUncoordinated, PolicySemi, PolicyOffline} {
		if _, err := Run(Config{Workload: "MID3", Policy: p, InstructionBudget: 15_000_000}); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}
