module coscale

go 1.22
