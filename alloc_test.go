package coscale

import (
	"math"
	"testing"

	"coscale/internal/core"
	"coscale/internal/experiments"
	"coscale/internal/policy"
)

// must unwraps a constructor's (value, error) pair for test setup; a
// non-nil error is a broken fixture, reported by panicking (Go forbids
// f(t, g()) with a multi-valued g, so the helper cannot also take t).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// TestDecideZeroAllocSteadyState is the alloc-budget gate for the §3.1 search
// (DESIGN.md §7): after the first call sizes the controller's scratch —
// evaluators, search state, marginal lists — CoScale.Decide must not allocate.
// The paper's <5 µs search cost depends on the decision loop staying cheap;
// zero steady-state allocations is what this suite enforces going forward.
func TestDecideZeroAllocSteadyState(t *testing.T) {
	for _, n := range []int{16, 64} {
		cfg, obs := experiments.SearchBenchObs(n)
		cs := must(core.New(cfg))
		cs.Decide(obs) // warm-up sizes every scratch buffer
		avg := testing.AllocsPerRun(100, func() { cs.Decide(obs) })
		if avg != 0 {
			t.Errorf("%d cores: Decide allocates %.1f times per call in steady state, want 0", n, avg)
		}
	}
}

// TestDecideDeterministicUnderReuse requires scratch-buffer reuse to be
// invisible in the output: deciding twice on one controller (warm buffers)
// must produce bit-identical decisions to a freshly constructed controller
// seeing the same observation.
func TestDecideDeterministicUnderReuse(t *testing.T) {
	cfg, obs := experiments.SearchBenchObs(16)

	reused := must(core.New(cfg))
	first := reused.Decide(obs).Clone() // Decide's result aliases controller scratch
	second := reused.Decide(obs).Clone()

	fresh := must(core.New(cfg)).Decide(obs).Clone()

	check := func(name string, d policy.Decision) {
		t.Helper()
		if d.MemStep != first.MemStep {
			t.Errorf("%s: MemStep %d, want %d", name, d.MemStep, first.MemStep)
		}
		if len(d.CoreSteps) != len(first.CoreSteps) {
			t.Fatalf("%s: %d core steps, want %d", name, len(d.CoreSteps), len(first.CoreSteps))
		}
		for i := range d.CoreSteps {
			if d.CoreSteps[i] != first.CoreSteps[i] {
				t.Errorf("%s: core %d step %d, want %d", name, i, d.CoreSteps[i], first.CoreSteps[i])
			}
		}
	}
	check("second decide on reused controller", second)
	check("fresh controller", fresh)
}

// TestEvaluatorResetMatchesFresh pins the evaluator-recycling contract: a
// Reset evaluator must predict bit-identically to a freshly constructed one.
func TestEvaluatorResetMatchesFresh(t *testing.T) {
	cfg, obs := experiments.SearchBenchObs(16)
	steps := policy.ZeroSteps(cfg.NCores)
	for i := range steps {
		steps[i] = i % 3
	}

	recycled := policy.NewEvaluator(cfg, obs)
	recycled.Evaluate(steps, 2) // dirty the scratch at another operating point
	recycled.Reset(cfg, obs)
	got := recycled.Evaluate(steps, 1)

	want := policy.NewEvaluator(cfg, obs).Evaluate(steps, 1)

	if math.Float64bits(got.SER) != math.Float64bits(want.SER) {
		t.Errorf("SER = %v, want %v", got.SER, want.SER)
	}
	if math.Float64bits(got.MaxSlow) != math.Float64bits(want.MaxSlow) {
		t.Errorf("MaxSlow = %v, want %v", got.MaxSlow, want.MaxSlow)
	}
	if math.Float64bits(got.Power.Total) != math.Float64bits(want.Power.Total) {
		t.Errorf("Power.Total = %v, want %v", got.Power.Total, want.Power.Total)
	}
	for i := range want.TPI {
		if math.Float64bits(got.TPI[i]) != math.Float64bits(want.TPI[i]) {
			t.Errorf("TPI[%d] = %v, want %v", i, got.TPI[i], want.TPI[i])
		}
		if math.Float64bits(got.Slowdown[i]) != math.Float64bits(want.Slowdown[i]) {
			t.Errorf("Slowdown[%d] = %v, want %v", i, got.Slowdown[i], want.Slowdown[i])
		}
	}
}
