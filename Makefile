# Local entry points mirroring .github/workflows/ci.yml exactly, so "works
# locally" and "passes CI" are the same statement.

GO ?= go

.PHONY: check build vet fmt-check lint escapes escapes-baseline test test-race bench bench-smoke bench-json bench-compare bit-identity profile fmt fuzz-smoke fault-smoke serve-smoke fleet-smoke fastcap-smoke warm-smoke

## check: the full gate — tier-1 verify + vet + gofmt + coscale-lint +
## escape-analysis gate + the parallel-search bit-identity property tests
check: build vet fmt-check lint escapes test bit-identity

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## test-race: full suite under the race detector
test-race:
	$(GO) test -race ./...

## bench: one iteration of every benchmark (compile + smoke, not timing)
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

## bench-smoke: the hot-path regression gate — alloc-budget tests, one
## iteration of the headline search/epoch benchmarks, and a short
## coscale-bench diff against the committed baseline (mirrors CI's
## bench-smoke)
bench-smoke:
	$(GO) test -run 'ZeroAlloc|DeterministicUnderReuse|GoldenBitIdentical' -count=1 . ./internal/sim
	GOMAXPROCS=1 $(GO) test -run 'ZeroAlloc|DeterministicUnderReuse|GoldenBitIdentical' -count=1 . ./internal/sim
	$(GO) test -bench 'BenchmarkSearch16Cores|BenchmarkEpochSimulation' -benchtime=1x -benchmem -run='^$$' .
	$(MAKE) bench-compare

## bit-identity: the parallel-vs-serial determinism gate behind DESIGN.md §11
## — the seeded property tests and batch-equivalence tests under the race
## detector, at both GOMAXPROCS=1 (forced-serial lane resolution) and the
## machine default, so scheduler width can never reach a decision bit
bit-identity:
	GOMAXPROCS=1 $(GO) test -race -count=1 \
		-run 'ParallelBitIdentical|ParallelDisableTablesAgrees|BatchDecideMatchesSequential|DecideAllOneShot|SearchStatsUnderBatch' ./internal/core
	$(GO) test -race -count=1 \
		-run 'ParallelBitIdentical|ParallelDisableTablesAgrees|BatchDecideMatchesSequential|DecideAllOneShot|SearchStatsUnderBatch' ./internal/core

## bench-json: regenerate BENCH_baseline.json (ns/op, allocs/op, figure
## wall-times; see DESIGN.md §7 for the schema)
bench-json:
	$(GO) run ./cmd/coscale-bench -out BENCH_baseline.json

## bench-compare: diff a fresh (short) coscale-bench run against the
## committed baseline and fail on regression. Allocation counts gate
## strictly; ns/op gates at 4x to absorb machine differences and the short
## benchtime's noise (cmd/coscale-bench documents the policy).
bench-compare:
	$(GO) run ./cmd/coscale-bench -benchtime 100ms -figure-budget 2000000 \
		-threshold 4 -compare BENCH_baseline.json

## profile: CPU and allocation profiles of the headline benchmarks
## (inspect with `go tool pprof cpu.out` / `go tool pprof mem.out`)
profile:
	$(GO) run ./cmd/coscale-bench -cpuprofile cpu.out -memprofile mem.out -out /dev/null
	@echo "wrote cpu.out and mem.out; inspect with: go tool pprof cpu.out"

## fuzz-smoke: a short burst of every native fuzz target (go allows one
## -fuzz target per invocation, hence the separate runs)
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/freq -run '^$$' -fuzz '^FuzzNewLadder$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/freq -run '^$$' -fuzz '^FuzzNewLadderSteps$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzProfileValidate$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzLookup$$' -fuzztime $(FUZZTIME)

## fault-smoke: the fault-injection and graceful-degradation suite under the
## race detector (mirrors CI's fault-smoke job)
fault-smoke:
	$(GO) test -race ./internal/fault
	$(GO) test -race -run 'Fault|Hardened|ErrorTolerance' ./internal/sim ./internal/policy ./internal/experiments

## serve-smoke: the serving-layer acceptance suite under the race detector —
## golden bit-identity vs the experiments runner, queue overflow → 429,
## mid-stream cancellation freeing the worker slot, cache hits in /metrics,
## and a real boot/SIGTERM drain of cmd/coscale-serve (mirrors CI's
## serve-smoke job)
serve-smoke:
	$(GO) test -race -count=1 ./internal/server ./internal/cache ./internal/buildinfo ./cmd/coscale-serve

## fleet-smoke: the fault-tolerant orchestration suite under the race
## detector — the seeded chaos e2e (a worker killed mid-sweep, dropped
## heartbeats, cut streams; results bit-identical to the single-node runner),
## coordinator crash/restart recovery from the journal with zero
## recomputation, torn-tail journal recovery, and the lease/ring/backoff/
## chaos unit tests (mirrors CI's fleet-smoke job; see DESIGN.md §12)
fleet-smoke:
	$(GO) test -race -count=1 ./internal/fleet ./cmd/coscale-fleet

## fastcap-smoke: the fleet-scale power-capping suite under the race
## detector — the fastcap allocator/frontier/rebalancer property tests
## (Float64bits-identical allocations across replays and node orderings,
## budget conservation, allocation-free steady state) plus a reduced-grid
## run of the -exp fastcap cap-event experiment (mirrors CI's fastcap-smoke
## job; see DESIGN.md §13)
fastcap-smoke:
	$(GO) test -race -count=1 ./internal/fastcap
	$(GO) test -race -count=1 -run 'TestFastCap' ./internal/experiments
	$(GO) run -race ./cmd/coscale-experiments -exp fastcap -fastcap-nodes 3 -fastcap-epochs 12

## warm-smoke: the warm-start search suite under the race detector — the
## controller-level warm property tests (bound re-validation, Reset bit
## identity, parallel-lane bit identity, zero-alloc steady state), the
## sim-level golden replay, the ablation gates, and a reduced-budget run of
## the -exp warmstart ablation (mirrors CI's warm-smoke job; DESIGN.md §14)
warm-smoke:
	$(GO) test -race -count=1 -run 'TestWarm|TestMinParallelItems|TestRelDelta' ./internal/core ./internal/sim
	$(GO) test -race -count=1 -run 'TestWarmStart' ./internal/experiments
	$(GO) run -race ./cmd/coscale-experiments -exp warmstart -budget 100000000

vet:
	$(GO) vet ./...

## fmt-check: fail if any file needs gofmt (fmt rewrites in place)
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

## lint: the domain-invariant analyzers, per-package and interprocedural
## (see internal/lint)
lint:
	$(GO) run ./cmd/coscale-lint ./...

## escapes: the escape-analysis regression gate — compiler heap escapes in
## the transitive //hot:path closure vs ESCAPES_baseline.json
escapes:
	$(GO) run ./cmd/coscale-lint -escapes

## escapes-baseline: re-record ESCAPES_baseline.json after a reviewed
## change to hot-path allocation behaviour
escapes-baseline:
	$(GO) run ./cmd/coscale-lint -escapes -update
