# Local entry points mirroring .github/workflows/ci.yml exactly, so "works
# locally" and "passes CI" are the same statement.

GO ?= go

.PHONY: check build vet fmt-check lint test test-race bench fmt

## check: the full gate — tier-1 verify + vet + gofmt + coscale-lint
check: build vet fmt-check lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## test-race: full suite under the race detector
test-race:
	$(GO) test -race ./...

## bench: one iteration of every benchmark (compile + smoke, not timing)
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

vet:
	$(GO) vet ./...

## fmt-check: fail if any file needs gofmt (fmt rewrites in place)
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

## lint: the domain-invariant analyzers (see internal/lint)
lint:
	$(GO) run ./cmd/coscale-lint ./...
